// Exhaustive property test of comparison-function identification: for EVERY
// function of up to 4 inputs, a brute-force interval detector over every
// variable permutation is the ground truth. The exact engine must agree on
// classification (completeness and soundness), every returned spec must
// denote the queried function, and the synthesized comparison unit must
// compute the spec's truth table exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/comparison.hpp"
#include "core/comparison_unit.hpp"
#include "core/truth_table.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {
namespace {

/// Ground truth by definition: f (or ~f when `complemented`) is an interval
/// function under SOME variable permutation. Tries all n! orders, computing
/// each minterm's decimal value with the same mapping
/// ComparisonSpec::to_truth_table uses (perm[0] = MSB), independently.
bool brute_force_interval(const TruthTable& f, bool complemented) {
  const unsigned n = f.num_vars();
  std::vector<unsigned> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::vector<unsigned> pos(n);
  do {
    for (unsigned j = 0; j < n; ++j) pos[perm[j]] = j;
    const auto value_of = [&](std::uint32_t m) {
      std::uint32_t value = 0;
      for (unsigned v = 0; v < n; ++v) {
        value |= ((m >> (n - 1 - v)) & 1u) << (n - 1 - pos[v]);
      }
      return value;
    };
    std::uint32_t lo = ~0u, hi = 0;
    bool any_on = false;
    for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
      if (f.get(m) == complemented) continue;  // OFF under this polarity
      const std::uint32_t v = value_of(m);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      any_on = true;
    }
    if (!any_on) continue;  // constants are handled by the caller
    bool ok = true;
    for (std::uint32_t m = 0; ok && m < f.num_minterms(); ++m) {
      if (f.get(m) != complemented) continue;
      ok = value_of(m) < lo || value_of(m) > hi;
    }
    if (ok) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

/// The unit netlist's exhaustive simulation as a truth table.
TruthTable simulate_unit(const Netlist& nl, unsigned n) {
  std::vector<std::uint64_t> pi(n, 0);
  for (std::uint32_t m = 0; m < (1u << n); ++m) {
    for (unsigned v = 0; v < n; ++v) {
      if ((m >> (n - 1 - v)) & 1u) pi[v] |= 1ull << m;
    }
  }
  const auto values = nl.simulate(pi);
  const std::uint64_t out = values[nl.outputs()[0]];
  return TruthTable::from_function(
      n, [&](std::uint32_t m) { return ((out >> m) & 1ull) != 0; });
}

void check_all_functions(unsigned n) {
  const std::uint32_t tables = 1u << (1u << n);
  for (std::uint32_t bits = 0; bits < tables; ++bits) {
    const TruthTable f = TruthTable::from_function(
        n, [&](std::uint32_t m) { return ((bits >> m) & 1u) != 0; });
    const bool is_const = f.is_const_zero() || f.is_const_one();
    const bool plain = is_const || brute_force_interval(f, false);
    const bool comp = is_const || brute_force_interval(f, true);

    // Classification: is_comparison_function uses the non-complemented
    // exact engine (complement handling is a realisation detail).
    EXPECT_EQ(is_comparison_function(f), plain) << "n=" << n << " bits=" << bits;

    IdentifyOptions opt;  // exact, try_complement=true
    const auto specs = identify_comparison(f, opt);
    EXPECT_EQ(!specs.empty(), plain || comp) << "n=" << n << " bits=" << bits;

    bool saw_plain = false, saw_comp = false;
    for (const ComparisonSpec& spec : specs) {
      // Soundness: every spec really denotes f.
      EXPECT_TRUE(spec_matches(spec, f))
          << "n=" << n << " bits=" << bits << " L=" << spec.lower
          << " U=" << spec.upper;
      EXPECT_LE(spec.lower, spec.upper);
      (spec.complemented ? saw_comp : saw_plain) = true;
    }
    // Completeness per polarity (constants are reported under one spec
    // whose polarity encodes which constant, so they are exempt).
    if (!is_const) {
      EXPECT_EQ(saw_plain, plain) << "n=" << n << " bits=" << bits;
      EXPECT_EQ(saw_comp, comp) << "n=" << n << " bits=" << bits;
    }

    // The synthesized unit computes the function (first spec per polarity).
    if (n > 0) {
      for (const ComparisonSpec* spec : {specs.empty() ? nullptr : &specs.front(),
                                         specs.empty() ? nullptr : &specs.back()}) {
        if (!spec) continue;
        const Netlist unit = build_unit_netlist(*spec);
        EXPECT_EQ(simulate_unit(unit, n), f)
            << "n=" << n << " bits=" << bits << " comp=" << spec->complemented;
      }
    }
  }
}

TEST(ComparisonProperty, AllFunctionsOfOneInput) { check_all_functions(1); }
TEST(ComparisonProperty, AllFunctionsOfTwoInputs) { check_all_functions(2); }
TEST(ComparisonProperty, AllFunctionsOfThreeInputs) { check_all_functions(3); }
TEST(ComparisonProperty, AllFunctionsOfFourInputs) { check_all_functions(4); }

TEST(ComparisonProperty, ZeroInputConstants) {
  for (bool one : {false, true}) {
    const TruthTable f =
        TruthTable::from_function(0, [&](std::uint32_t) { return one; });
    EXPECT_TRUE(is_comparison_function(f));
    const auto specs = identify_comparison(f);
    ASSERT_FALSE(specs.empty());
    EXPECT_EQ(specs.front().complemented, !one);
  }
}

}  // namespace
}  // namespace compsyn
