#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/comparison.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// Brute force ground truth: is the ON-set contiguous under SOME permutation?
bool brute_force_is_comparison(const TruthTable& f) {
  const unsigned n = f.num_vars();
  if (f.is_const_zero() || f.is_const_one()) return true;
  std::vector<unsigned> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  do {
    const auto on = f.permuted(perm).on_set();
    if (!on.empty() && on.back() - on.front() + 1 == on.size()) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

TEST(Comparison, PaperSection3Example) {
  // f2(y1..y4) with ON minterms {1, 5, 6, 9, 10, 14}; under the permutation
  // x1=y4, x2=y3, x3=y2, x4=y1 the ON values become {5..10}, so L=5, U=10.
  TruthTable f(4);
  for (std::uint32_t m : {1u, 5u, 6u, 9u, 10u, 14u}) f.set(m, true);

  IdentifyOptions opt;
  opt.max_results = 64;
  auto specs = identify_comparison(f, opt);
  ASSERT_FALSE(specs.empty());
  for (const auto& s : specs) EXPECT_TRUE(spec_matches(s, f));

  // The paper's specific permutation (position j holds variable perm[j];
  // x1=y4 means position 0 holds variable 3).
  const std::vector<unsigned> paper_perm{3, 2, 1, 0};
  bool found_paper_spec = false;
  for (const auto& s : specs) {
    if (!s.complemented && s.perm == paper_perm) {
      EXPECT_EQ(s.lower, 5u);
      EXPECT_EQ(s.upper, 10u);
      found_paper_spec = true;
    }
  }
  EXPECT_TRUE(found_paper_spec);
}

TEST(Comparison, ExactMatchesBruteForceOnAll3VarFunctions) {
  for (std::uint32_t bits = 0; bits < 256; ++bits) {
    TruthTable f(3);
    for (std::uint32_t m = 0; m < 8; ++m) f.set(m, (bits >> m) & 1u);
    EXPECT_EQ(is_comparison_function(f), brute_force_is_comparison(f))
        << "truth table " << f.to_bits();
  }
}

TEST(Comparison, ExactMatchesBruteForceOnRandom4And5VarFunctions) {
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    const unsigned n = trial % 2 ? 4 : 5;
    TruthTable f = TruthTable::from_function(
        n, [&](std::uint32_t) { return rng.flip(); });
    EXPECT_EQ(is_comparison_function(f), brute_force_is_comparison(f))
        << "n=" << n << " bits=" << f.to_bits();
  }
}

TEST(Comparison, AllSpecsDescribeTheFunction) {
  Rng rng(5);
  int checked = 0;
  for (int trial = 0; trial < 500 && checked < 40; ++trial) {
    // Random interval functions are comparison functions by construction.
    const unsigned n = 3 + trial % 3;
    const std::uint32_t max = (1u << n) - 1;
    std::uint32_t lo = static_cast<std::uint32_t>(rng.below(max + 1));
    std::uint32_t hi = static_cast<std::uint32_t>(rng.below(max + 1));
    if (lo > hi) std::swap(lo, hi);
    auto p32 = rng.permutation(n);
    ComparisonSpec made;
    made.n = n;
    made.perm.assign(p32.begin(), p32.end());
    made.lower = lo;
    made.upper = hi;
    TruthTable f = made.to_truth_table();
    if (f.is_const_zero() || f.is_const_one()) continue;
    auto specs = identify_comparison(f);
    ASSERT_FALSE(specs.empty()) << f.to_bits();
    for (const auto& s : specs) {
      EXPECT_TRUE(spec_matches(s, f)) << f.to_bits();
      EXPECT_LE(s.lower, s.upper);
    }
    ++checked;
  }
  EXPECT_GE(checked, 40);
}

TEST(Comparison, SingleMintermAlwaysComparison) {
  Rng rng(11);
  for (unsigned n = 1; n <= 6; ++n) {
    TruthTable f(n);
    f.set(static_cast<std::uint32_t>(rng.below(1u << n)), true);
    EXPECT_TRUE(is_comparison_function(f));
  }
}

TEST(Comparison, Xor2IsComparisonXor3IsNot) {
  TruthTable x2 = TruthTable::from_bits("0110");
  EXPECT_TRUE(is_comparison_function(x2));  // ON {1,2}
  TruthTable x3 = TruthTable::from_bits("01101001");
  EXPECT_FALSE(is_comparison_function(x3));
  // ... and its complement is not either (it is symmetric too).
  EXPECT_FALSE(is_comparison_function(x3.complemented()));
  EXPECT_TRUE(identify_comparison(x3).empty());
}

TEST(Comparison, MajorityIsNotComparison) {
  // maj(a,b,c): ON {3,5,6,7} -- not contiguous under any permutation
  // (symmetric function, so permutations do not change the ON values).
  TruthTable maj = TruthTable::from_bits("00010111");
  EXPECT_FALSE(is_comparison_function(maj));
}

TEST(Comparison, ComplementHandling) {
  // NAND3: OFF-set is {7}, a single minterm -> complemented spec exists.
  TruthTable nand3 = TruthTable::from_function(3, [](std::uint32_t m) { return m != 7; });
  auto specs = identify_comparison(nand3);
  ASSERT_FALSE(specs.empty());
  bool has_plain = false, has_complemented = false;
  for (const auto& s : specs) {
    EXPECT_TRUE(spec_matches(s, nand3));
    (s.complemented ? has_complemented : has_plain) = true;
  }
  // NAND3 ON-set is [0,6]: contiguous directly, and via the complement.
  EXPECT_TRUE(has_plain);
  EXPECT_TRUE(has_complemented);
}

TEST(Comparison, ConstantFunctions) {
  TruthTable one = TruthTable::from_function(3, [](std::uint32_t) { return true; });
  auto specs = identify_comparison(one);
  ASSERT_FALSE(specs.empty());
  EXPECT_FALSE(specs[0].complemented);
  EXPECT_EQ(specs[0].lower, 0u);
  EXPECT_EQ(specs[0].upper, 7u);

  TruthTable zero(3);
  specs = identify_comparison(zero);
  ASSERT_FALSE(specs.empty());
  EXPECT_TRUE(specs[0].complemented);
  EXPECT_TRUE(spec_matches(specs[0], zero));
}

TEST(Comparison, ZeroVarFunction) {
  TruthTable t(0);
  t.set(0, true);
  auto specs = identify_comparison(t);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_FALSE(specs[0].complemented);
  EXPECT_TRUE(spec_matches(specs[0], t));
}

TEST(Comparison, SampledEngineFindsEasyCases) {
  Rng rng(21);
  IdentifyOptions opt;
  opt.exact = false;
  opt.sample_tries = 200;
  opt.rng = &rng;
  // Threshold function >= 5 of 3 vars: ON {5,6,7} under identity.
  TruthTable f = TruthTable::from_function(3, [](std::uint32_t m) { return m >= 5; });
  auto specs = identify_comparison(f, opt);
  ASSERT_FALSE(specs.empty());
  for (const auto& s : specs) EXPECT_TRUE(spec_matches(s, f));
}

TEST(Comparison, SampledEngineNeverFalselyAccepts) {
  Rng rng(22);
  IdentifyOptions opt;
  opt.exact = false;
  opt.sample_tries = 100;
  opt.rng = &rng;
  TruthTable x3 = TruthTable::from_bits("01101001");
  EXPECT_TRUE(identify_comparison(x3, opt).empty());
}

TEST(Comparison, AndOrGatesAreComparison) {
  for (unsigned n = 2; n <= 5; ++n) {
    TruthTable andf = TruthTable::from_function(
        n, [&](std::uint32_t m) { return m == (1u << n) - 1; });
    TruthTable orf = TruthTable::from_function(
        n, [&](std::uint32_t m) { return m != 0; });
    EXPECT_TRUE(is_comparison_function(andf)) << n;
    EXPECT_TRUE(is_comparison_function(orf)) << n;
  }
}

TEST(Comparison, ThresholdRelationship) {
  // Section 3.1: a >=L block is a threshold function with weights 2^(n-i);
  // check that the identified bounds of a weighted-threshold ON-set match.
  const unsigned n = 4;
  for (std::uint32_t L = 1; L < 16; ++L) {
    TruthTable f = TruthTable::from_function(n, [&](std::uint32_t m) { return m >= L; });
    auto specs = identify_comparison(f);
    ASSERT_FALSE(specs.empty()) << L;
    bool found_identity = false;
    for (const auto& s : specs) {
      if (!s.complemented && s.perm == std::vector<unsigned>({0, 1, 2, 3})) {
        EXPECT_EQ(s.lower, L);
        EXPECT_EQ(s.upper, 15u);
        found_identity = true;
      }
    }
    EXPECT_TRUE(found_identity) << L;
  }
}

}  // namespace
}  // namespace compsyn
