#include <gtest/gtest.h>

#include <numeric>

#include "core/comparison_unit.hpp"
#include "netlist/equivalence.hpp"
#include "paths/paths.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

ComparisonSpec make_spec(unsigned n, std::uint32_t lower, std::uint32_t upper,
                         bool complemented = false,
                         std::vector<unsigned> perm = {}) {
  ComparisonSpec s;
  s.n = n;
  if (perm.empty()) {
    s.perm.resize(n);
    std::iota(s.perm.begin(), s.perm.end(), 0u);
  } else {
    s.perm = std::move(perm);
  }
  s.lower = lower;
  s.upper = upper;
  s.complemented = complemented;
  return s;
}

/// Exhaustively checks that the unit computes interval membership.
void expect_unit_correct(const ComparisonSpec& spec, const UnitOptions& opt = {}) {
  Netlist unit = build_unit_netlist(spec, opt);
  ASSERT_TRUE(unit.check().empty()) << unit.check();
  TruthTable expect = spec.to_truth_table();
  const unsigned n = spec.n;
  for (std::uint32_t m = 0; m < (1u << n); ++m) {
    std::vector<std::uint64_t> pi(n);
    for (unsigned v = 0; v < n; ++v) pi[v] = ((m >> (n - 1 - v)) & 1u) ? ~0ull : 0;
    auto val = unit.simulate(pi);
    EXPECT_EQ((val[unit.outputs()[0]] & 1ull) != 0, expect.get(m))
        << "L=" << spec.lower << " U=" << spec.upper << " m=" << m
        << " comp=" << spec.complemented;
  }
}

TEST(ComparisonUnit, Figure3a_GE3Block) {
  // >= 3 over 4 bits: L = 0011. Expected structure: OR(x1, OR(x2, AND(x3,x4)))
  // with merging: OR(x1, x2, AND(x3, x4)) -> 3 equivalent 2-input gates.
  const auto spec = make_spec(4, 3, 15);
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  expect_unit_correct(spec);
  EXPECT_EQ(r.equiv_gates, 3u);
  EXPECT_EQ(r.kp, (std::vector<std::uint32_t>{1, 1, 1, 1}));
}

TEST(ComparisonUnit, Figure3b_GE12BlockOmitsTrailingZeros) {
  // >= 12 over 4 bits: L = 1100 -> AND(x1, x2); x3, x4 drop out entirely.
  const auto spec = make_spec(4, 12, 15);
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  expect_unit_correct(spec);
  EXPECT_EQ(r.equiv_gates, 1u);
  EXPECT_EQ(r.kp, (std::vector<std::uint32_t>{1, 1, 0, 0}));
}

TEST(ComparisonUnit, Figure3c_LE12Block) {
  // <= 12 over 4 bits: U = 1100 -> ~x1 + ~x2 + ~x3~x4: 3 equivalent gates.
  const auto spec = make_spec(4, 0, 12);
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  expect_unit_correct(spec);
  EXPECT_EQ(r.equiv_gates, 3u);
  EXPECT_EQ(r.kp, (std::vector<std::uint32_t>{1, 1, 1, 1}));
}

TEST(ComparisonUnit, Figure3d_LE3BlockOmitsTrailingOnes) {
  // <= 3 over 4 bits: U = 0011 -> AND(~x1, ~x2); x3, x4 drop out.
  const auto spec = make_spec(4, 0, 3);
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  expect_unit_correct(spec);
  EXPECT_EQ(r.equiv_gates, 1u);
  EXPECT_EQ(r.kp, (std::vector<std::uint32_t>{1, 1, 0, 0}));
}

TEST(ComparisonUnit, Figure4_GE7MergesChain) {
  // >= 7 over 4 bits: L = 0111 -> OR(x1, AND(x2, x3, x4)) after merging.
  const auto spec = make_spec(4, 7, 15);
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  expect_unit_correct(spec);
  EXPECT_EQ(r.equiv_gates, 3u);  // AND3 counts 2, OR2 counts 1
  EXPECT_EQ(r.depth, 2u);
  // Without merging the chain has three 2-input gates in a row.
  UnitOptions no_merge;
  no_merge.merge_gates = false;
  UnitBuildResult r2;
  Netlist unit2 = build_unit_netlist(spec, no_merge, &r2);
  expect_unit_correct(spec, no_merge);
  EXPECT_EQ(r2.equiv_gates, 3u);
  EXPECT_EQ(r2.depth, 3u);
}

TEST(ComparisonUnit, Figure1_PaperExampleL5U10) {
  // The Section 3.1 example: L=5, U=10 over 4 bits, both blocks present.
  const auto spec = make_spec(4, 5, 10);
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  expect_unit_correct(spec);
  // At most two paths from any input (Section 3.1).
  for (std::uint32_t kp : r.kp) EXPECT_LE(kp, 2u);
  // x1 participates in both blocks here.
  EXPECT_EQ(r.kp[0], 2u);
}

TEST(ComparisonUnit, Figure6_FreeVariableUnit) {
  // L=11=1011, U=12=1100: x1 is free, L_F=3, U_F=4 over (x2,x3,x4).
  const auto spec = make_spec(4, 11, 12);
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  expect_unit_correct(spec);
  EXPECT_EQ(r.kp[0], 1u);  // free variables have exactly one path
  EXPECT_LE(r.kp[1], 2u);
}

TEST(ComparisonUnit, SinglePrimeImplicantBecomesAnd) {
  // Section 3.2.2: L_F = 00..0 and U_F = 11..1 -> a single AND of the free
  // literals. f(y1,y2,y3) = y1 y3: perm (y1,y3,y2), L=110=6, U=111=7.
  const auto spec = make_spec(3, 6, 7, false, {0, 2, 1});
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  expect_unit_correct(spec);
  EXPECT_EQ(r.equiv_gates, 1u);  // one 2-input AND
  EXPECT_EQ(r.kp, (std::vector<std::uint32_t>{1, 0, 1}));
  EXPECT_EQ(r.depth, 1u);
}

TEST(ComparisonUnit, NegativeLiteralFreeVariables) {
  // L = U = 0: all variables free with bit 0 -> AND of all inverted inputs.
  const auto spec = make_spec(3, 0, 0);
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  expect_unit_correct(spec);
  EXPECT_EQ(r.equiv_gates, 2u);  // 3-input AND
  EXPECT_EQ(r.kp, (std::vector<std::uint32_t>{1, 1, 1}));
}

TEST(ComparisonUnit, FullIntervalIsConstantOne) {
  const auto spec = make_spec(3, 0, 7);
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  expect_unit_correct(spec);
  EXPECT_EQ(r.equiv_gates, 0u);
  EXPECT_EQ(unit.node(r.output).type, GateType::Const1);
}

TEST(ComparisonUnit, ComplementedAddsInverter) {
  const auto spec = make_spec(3, 2, 5, /*complemented=*/true);
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  expect_unit_correct(spec);
  EXPECT_EQ(unit.node(r.output).type, GateType::Not);
}

TEST(ComparisonUnit, SingleLiteralOutputIsTheLeaf) {
  // f = x1 over 2 vars: L=10=2, U=11=3 -> the output IS input x1.
  const auto spec = make_spec(2, 2, 3);
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  expect_unit_correct(spec);
  EXPECT_EQ(r.output, unit.inputs()[0]);
  EXPECT_EQ(r.equiv_gates, 0u);
}

// Exhaustive sweep: every (n, L, U) pair for n in 1..5, plus both output
// polarities, must produce a correct unit with the paper's structural
// invariants (<= 2 paths per input, <= n levels per block chain).
struct UnitSweepParam {
  unsigned n;
  bool complemented;
};

class UnitSweep : public ::testing::TestWithParam<UnitSweepParam> {};

TEST_P(UnitSweep, AllBoundsCorrectAndSmall) {
  const auto [n, comp] = GetParam();
  const std::uint32_t max = (1u << n) - 1;
  for (std::uint32_t lower = 0; lower <= max; ++lower) {
    for (std::uint32_t upper = lower; upper <= max; ++upper) {
      const auto spec = make_spec(n, lower, upper, comp);
      UnitBuildResult r;
      Netlist unit = build_unit_netlist(spec, {}, &r);
      ASSERT_TRUE(unit.check().empty()) << unit.check();
      // Correctness.
      TruthTable expect = spec.to_truth_table();
      for (std::uint32_t m = 0; m <= max; ++m) {
        std::vector<std::uint64_t> pi(n);
        for (unsigned v = 0; v < n; ++v) {
          pi[v] = ((m >> (n - 1 - v)) & 1u) ? ~0ull : 0;
        }
        auto val = unit.simulate(pi);
        ASSERT_EQ((val[unit.outputs()[0]] & 1ull) != 0, expect.get(m))
            << "n=" << n << " L=" << lower << " U=" << upper << " m=" << m;
      }
      // Structural claims from Section 3.1.
      for (std::uint32_t kp : r.kp) EXPECT_LE(kp, 2u);
      auto pc = count_paths(unit);
      std::uint64_t expected_paths = 0;
      for (std::uint32_t kp : r.kp) expected_paths += kp;
      EXPECT_EQ(pc.total, expected_paths) << "kp bookkeeping must match N_p";
      // A comparison unit has at most 2(n-1) equivalent 2-input gates
      // (two chains of at most n-1 gates each).
      EXPECT_LE(r.equiv_gates, 2u * (n > 0 ? n - 1 : 0) + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllN, UnitSweep,
    ::testing::Values(UnitSweepParam{1, false}, UnitSweepParam{2, false},
                      UnitSweepParam{3, false}, UnitSweepParam{4, false},
                      UnitSweepParam{5, false}, UnitSweepParam{3, true},
                      UnitSweepParam{4, true}),
    [](const ::testing::TestParamInfo<UnitSweepParam>& info) {
      return "n" + std::to_string(info.param.n) +
             (info.param.complemented ? "_comp" : "");
    });

TEST(ComparisonUnit, RandomPermutationsCorrect) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned n = 2 + trial % 4;
    const std::uint32_t max = (1u << n) - 1;
    std::uint32_t lo = static_cast<std::uint32_t>(rng.below(max + 1));
    std::uint32_t hi = static_cast<std::uint32_t>(rng.below(max + 1));
    if (lo > hi) std::swap(lo, hi);
    auto p32 = rng.permutation(n);
    const auto spec =
        make_spec(n, lo, hi, rng.flip(), std::vector<unsigned>(p32.begin(), p32.end()));
    expect_unit_correct(spec);
  }
}

TEST(ComparisonUnit, UnitCostAgreesWithBuild) {
  const auto spec = make_spec(4, 5, 10);
  UnitBuildResult r;
  (void)build_unit_netlist(spec, {}, &r);
  const UnitCost c = unit_cost(spec);
  EXPECT_EQ(c.equiv_gates, r.equiv_gates);
  EXPECT_EQ(c.kp, r.kp);
  EXPECT_EQ(c.depth, r.depth);
}

TEST(ComparisonUnit, BuildIntoExistingNetlistLeavesRestIntact) {
  Netlist nl("host");
  NodeId a = nl.add_input("a");
  NodeId b = nl.add_input("b");
  NodeId c = nl.add_input("c");
  NodeId g = nl.add_gate(GateType::And, {a, b});
  nl.mark_output(g);
  const std::size_t before = nl.size();
  const auto spec = make_spec(3, 2, 5);
  auto r = build_comparison_unit(nl, spec, {a, b, c});
  nl.mark_output(r.output);
  EXPECT_GT(nl.size(), before);
  EXPECT_TRUE(nl.check().empty()) << nl.check();
  // Original output still computes AND(a, b).
  auto v = nl.simulate({0b0011ull, 0b0101ull, 0b0110ull});
  EXPECT_EQ(v[g] & 0xFull, 0b0001ull);
}

}  // namespace
}  // namespace compsyn
