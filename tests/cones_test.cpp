#include <gtest/gtest.h>

#include <algorithm>

#include "core/cones.hpp"

namespace compsyn {
namespace {

/// Two-level circuit: g = OR(AND(a,b), AND(b,c)); the first AND also feeds
/// a second output (shared logic).
struct Fixture {
  Netlist nl{"fx"};
  NodeId a, b, c, and1, and2, g, shared_out;
  Fixture() {
    a = nl.add_input("a");
    b = nl.add_input("b");
    c = nl.add_input("c");
    and1 = nl.add_gate(GateType::And, {a, b});
    and2 = nl.add_gate(GateType::And, {b, c});
    g = nl.add_gate(GateType::Or, {and1, and2});
    shared_out = nl.add_gate(GateType::Not, {and1});
    nl.mark_output(g);
    nl.mark_output(shared_out);
  }
};

TEST(Cones, EnumeratesAllSubcircuits) {
  Fixture fx;
  auto cones = enumerate_cones(fx.nl, fx.g, {.max_leaves = 4, .max_cones = 100});
  // Expected interiors: {g}, {g,and1}, {g,and2}, {g,and1,and2}.
  ASSERT_EQ(cones.size(), 4u);
  for (const auto& c : cones) {
    EXPECT_EQ(c.root, fx.g);
    EXPECT_TRUE(std::binary_search(c.interior.begin(), c.interior.end(), fx.g));
    EXPECT_LE(c.leaves.size(), 4u);
  }
  // The full cone has leaves {a, b, c}.
  bool found_full = false;
  for (const auto& c : cones) {
    if (c.interior.size() == 3) {
      EXPECT_EQ(c.leaves, (std::vector<NodeId>{fx.a, fx.b, fx.c}));
      found_full = true;
    }
  }
  EXPECT_TRUE(found_full);
}

TEST(Cones, LeafLimitRespected) {
  Fixture fx;
  auto cones = enumerate_cones(fx.nl, fx.g, {.max_leaves = 2, .max_cones = 100});
  // Only the single-gate cone fits in 2 leaves.
  ASSERT_EQ(cones.size(), 1u);
  EXPECT_EQ(cones[0].interior, (std::vector<NodeId>{fx.g}));
}

TEST(Cones, MaxConesCapRespected) {
  Fixture fx;
  auto cones = enumerate_cones(fx.nl, fx.g, {.max_leaves = 4, .max_cones = 2});
  EXPECT_EQ(cones.size(), 2u);
}

TEST(Cones, ConeFunctionMatchesSimulation) {
  Fixture fx;
  auto cones = enumerate_cones(fx.nl, fx.g, {.max_leaves = 4, .max_cones = 100});
  for (const auto& c : cones) {
    if (c.interior.size() != 3) continue;
    TruthTable f = cone_function(fx.nl, c);
    // f(a,b,c) = ab + bc with a=var0 (MSB), b=var1, c=var2.
    for (std::uint32_t m = 0; m < 8; ++m) {
      const bool a = (m >> 2) & 1, b = (m >> 1) & 1, cc = m & 1;
      EXPECT_EQ(f.get(m), (a && b) || (b && cc)) << m;
    }
  }
}

TEST(Cones, ConstantsAbsorbedIntoFunction) {
  Netlist nl("k");
  NodeId a = nl.add_input("a");
  NodeId k1 = nl.add_const(true);
  NodeId g = nl.add_gate(GateType::And, {a, k1});
  nl.mark_output(g);
  auto cones = enumerate_cones(nl, g, {});
  ASSERT_EQ(cones.size(), 1u);
  EXPECT_EQ(cones[0].leaves, (std::vector<NodeId>{a}));  // constant not a leaf
  TruthTable f = cone_function(nl, cones[0]);
  EXPECT_EQ(f.num_vars(), 1u);
  EXPECT_FALSE(f.get(0));
  EXPECT_TRUE(f.get(1));
}

TEST(Cones, RemovableCountExcludesSharedGates) {
  Fixture fx;
  auto cones = enumerate_cones(fx.nl, fx.g, {.max_leaves = 4, .max_cones = 100});
  for (const auto& c : cones) {
    std::vector<NodeId> removable;
    const std::uint64_t n = removable_gate_count(fx.nl, c, &removable);
    const bool has_and1 =
        std::binary_search(c.interior.begin(), c.interior.end(), fx.and1);
    const bool has_and2 =
        std::binary_search(c.interior.begin(), c.interior.end(), fx.and2);
    // and1 feeds shared_out externally, so it is never removable; the OR
    // counts 1, and2 counts 1 when inside.
    std::uint64_t expect = 1;  // the OR gate at the root
    if (has_and2) expect += 1;
    EXPECT_EQ(n, expect) << "and1=" << has_and1 << " and2=" << has_and2;
    EXPECT_EQ(std::count(removable.begin(), removable.end(), fx.and1), 0);
  }
}

TEST(Cones, RemovableCountTransitive) {
  // chain: g = NOT(x) ; x = AND(a, y); y = OR(a, b). Absorbing everything,
  // all three gates are removable (AND + OR = 2 equivalent gates; NOT = 0).
  Netlist nl("t");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId y = nl.add_gate(GateType::Or, {a, b});
  NodeId x = nl.add_gate(GateType::And, {a, y});
  NodeId g = nl.add_gate(GateType::Not, {x});
  nl.mark_output(g);
  auto cones = enumerate_cones(nl, g, {.max_leaves = 3, .max_cones = 100});
  bool saw_full = false;
  for (const auto& c : cones) {
    if (c.interior.size() == 3) {
      saw_full = true;
      EXPECT_EQ(removable_gate_count(nl, c), 2u);
    }
  }
  EXPECT_TRUE(saw_full);
}

TEST(Cones, InteriorOutputGateNotRemovable) {
  // y = AND(a,b) is itself a primary output; a cone over g = NOT(y) that
  // absorbs y must not count y as removable.
  Netlist nl("po");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId y = nl.add_gate(GateType::And, {a, b});
  NodeId g = nl.add_gate(GateType::Not, {y});
  nl.mark_output(y);
  nl.mark_output(g);
  auto cones = enumerate_cones(nl, g, {.max_leaves = 2, .max_cones = 100});
  for (const auto& c : cones) {
    if (c.interior.size() == 2) {
      EXPECT_EQ(removable_gate_count(nl, c), 0u);
    }
  }
}

TEST(Cones, WideRootYieldsNothing) {
  Netlist nl("wide");
  std::vector<NodeId> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(nl.add_input());
  NodeId g = nl.add_gate(GateType::And, ins);
  nl.mark_output(g);
  EXPECT_TRUE(enumerate_cones(nl, g, {.max_leaves = 6}).empty());
}

TEST(Cones, DuplicateFaninsCountOnceAsLeaf) {
  Netlist nl("dup");
  NodeId a = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, a});
  nl.mark_output(g);
  auto cones = enumerate_cones(nl, g, {});
  ASSERT_EQ(cones.size(), 1u);
  EXPECT_EQ(cones[0].leaves.size(), 1u);
  TruthTable f = cone_function(nl, cones[0]);
  EXPECT_EQ(f.to_bits(), "01");  // AND(a,a) = a
}

}  // namespace
}  // namespace compsyn
