#include <gtest/gtest.h>

#include "delay/algebra.hpp"
#include "delay/robust.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

Wave S0{false, false, true};
Wave S1{true, true, true};
Wave R{false, true, true};
Wave F{true, false, true};
Wave S0H{false, false, false};
Wave S1H{true, true, false};
Wave RH{false, true, false};

TEST(WaveAlgebra, AndRules) {
  // Clean stable controlling input dominates everything.
  EXPECT_EQ(eval_wave(GateType::And, {S0, RH}), S0);
  EXPECT_EQ(eval_wave(GateType::And, {S0, F}), S0);
  // All stable 1 and clean -> stable 1 clean.
  EXPECT_EQ(eval_wave(GateType::And, {S1, S1}), S1);
  // Hazardous stable 1 contaminates.
  EXPECT_EQ(eval_wave(GateType::And, {S1, S1H}), S1H);
  // Rising AND rising -> clean rising.
  EXPECT_EQ(eval_wave(GateType::And, {R, R}), R);
  EXPECT_EQ(eval_wave(GateType::And, {R, S1}), R);
  // Crossing transitions: static 0 but glitch-prone.
  EXPECT_EQ(eval_wave(GateType::And, {R, F}), S0H);
  // Hazardous stable 0 (no clean controlling input) stays hazardous.
  EXPECT_EQ(eval_wave(GateType::And, {S0H, S1}), S0H);
  // Falling with clean side stays clean.
  EXPECT_EQ(eval_wave(GateType::And, {F, S1}), F);
  // Falling with a hazardous side input is hazardous.
  EXPECT_EQ(eval_wave(GateType::And, {F, S1H}), (Wave{true, false, false}));
}

TEST(WaveAlgebra, OrRulesAreDual) {
  EXPECT_EQ(eval_wave(GateType::Or, {S1, RH}), S1);
  EXPECT_EQ(eval_wave(GateType::Or, {S0, S0}), S0);
  EXPECT_EQ(eval_wave(GateType::Or, {R, F}), S1H);
  EXPECT_EQ(eval_wave(GateType::Or, {R, S0}), R);
  EXPECT_EQ(eval_wave(GateType::Or, {F, F}), F);
}

TEST(WaveAlgebra, InversionsFlipValuesKeepCleanliness) {
  EXPECT_EQ(eval_wave(GateType::Not, {R}), F);
  EXPECT_EQ(eval_wave(GateType::Not, {RH}), (Wave{true, false, false}));
  EXPECT_EQ(eval_wave(GateType::Nand, {R, R}), F);
  EXPECT_EQ(eval_wave(GateType::Nor, {S0, S0}), S1);
  EXPECT_EQ(eval_wave(GateType::Nand, {R, F}), S1H);
}

TEST(WaveAlgebra, XorRules) {
  EXPECT_EQ(eval_wave(GateType::Xor, {R, S0}), R);
  EXPECT_EQ(eval_wave(GateType::Xor, {R, S1}), F);
  // Two transitions through XOR can glitch even when aligned.
  const Wave w = eval_wave(GateType::Xor, {R, R});
  EXPECT_FALSE(w.clean);
  EXPECT_TRUE(w.stable(false));
  EXPECT_EQ(eval_wave(GateType::Xnor, {R, S0}), F);
}

TEST(WaveAlgebra, ConstsAreCleanStable) {
  EXPECT_EQ(eval_wave(GateType::Const0, {}), S0);
  EXPECT_EQ(eval_wave(GateType::Const1, {}), S1);
}

// Brute-force soundness check of the cleanliness flag: enumerate all gate
// delay assignments of a tiny circuit as event orderings and confirm that a
// line the algebra calls clean never shows more than one transition.
// Instead of a full timing simulator, exploit the canonical glitch circuit.
TEST(WaveAlgebra, GlitchCircuitIsFlaggedHazardous) {
  // y = AND(a, NOT(a)): statically 0, but a rising `a` can pulse y.
  Netlist nl("glitch");
  NodeId a = nl.add_input();
  NodeId na = nl.add_gate(GateType::Not, {a});
  NodeId y = nl.add_gate(GateType::And, {a, na});
  nl.mark_output(y);
  auto waves = simulate_two_pattern(nl, {false}, {true});
  EXPECT_TRUE(waves[y].stable(false));
  EXPECT_FALSE(waves[y].clean);
}

TEST(RobustEdge, AndGateConditions) {
  Netlist nl("re");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, b});
  nl.mark_output(g);
  {
    // Rising on-path (to non-controlling): side needs final 1 only.
    auto waves = simulate_two_pattern(nl, {false, false}, {true, true});
    EXPECT_TRUE(robust_edge(nl, waves, g, 0));  // side b rises: allowed
  }
  {
    // Falling on-path (to controlling): side must be steady 1.
    auto waves = simulate_two_pattern(nl, {true, false}, {false, true});
    EXPECT_FALSE(robust_edge(nl, waves, g, 0));  // side b rising: not robust
    auto waves2 = simulate_two_pattern(nl, {true, true}, {false, true});
    EXPECT_TRUE(robust_edge(nl, waves2, g, 0));  // side b steady 1
  }
  {
    // Side with controlling final value blocks propagation.
    auto waves = simulate_two_pattern(nl, {false, false}, {true, false});
    EXPECT_FALSE(robust_edge(nl, waves, g, 0));
  }
  {
    // No transition on the on-path input.
    auto waves = simulate_two_pattern(nl, {true, true}, {true, true});
    EXPECT_FALSE(robust_edge(nl, waves, g, 0));
  }
}

TEST(RobustTests, SingleAndGatePathFaults) {
  Netlist nl("and2");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, b});
  nl.mark_output(g);
  auto paths = enumerate_paths(nl);
  ASSERT_EQ(paths.size(), 2u);
  // Every fault of an AND gate is robustly testable.
  for (const auto& p : paths) {
    for (bool rising : {true, false}) {
      EXPECT_TRUE(find_robust_test(nl, p, rising).has_value());
    }
  }
  // And the canonical tests validate.
  EXPECT_TRUE(robustly_tests(nl, paths[0], true, {false, true}, {true, true}));
  EXPECT_FALSE(robustly_tests(nl, paths[0], true, {false, false}, {true, false}));
}

TEST(RobustTests, UntestablePathDetected) {
  // y = OR(AND(a,b), AND(a, NOT b)) -- the path through NOT b ... OR is
  // robustly untestable in the classic way? Use a simpler guaranteed case:
  // g = AND(a, a): side input is the on-path signal itself, so falling
  // transitions can never be robust and rising needs the duplicate to rise
  // too, which robust_edge allows. Check the falling fault is untestable.
  Netlist nl("dup");
  NodeId a = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, a});
  nl.mark_output(g);
  auto paths = enumerate_paths(nl);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_FALSE(find_robust_test(nl, p, /*rising=*/false).has_value());
    EXPECT_TRUE(find_robust_test(nl, p, /*rising=*/true).has_value());
  }
}

TEST(RobustSimulator, MatchesPerPathCheckOnSmallCircuit) {
  // Cross-validate the subgraph-walk simulator against robustly_tests().
  Netlist nl("xv");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId c = nl.add_input();
  NodeId nb = nl.add_gate(GateType::Not, {b});
  NodeId g1 = nl.add_gate(GateType::And, {a, nb});
  NodeId g2 = nl.add_gate(GateType::Or, {g1, c});
  NodeId g3 = nl.add_gate(GateType::Nand, {g1, b});
  nl.mark_output(g2);
  nl.mark_output(g3);

  const auto paths = enumerate_paths(nl);
  Rng rng(42);
  const std::size_t n = nl.inputs().size();
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<bool> v1(n), v2(n);
    for (std::size_t i = 0; i < n; ++i) {
      v1[i] = rng.flip();
      v2[i] = rng.flip();
    }
    RobustPdfSimulator sim(nl);
    sim.apply(v1, v2);
    for (const auto& p : paths) {
      for (bool rising : {true, false}) {
        const std::uint64_t fid = 2 * p.id + (rising ? 0 : 1);
        EXPECT_EQ(sim.is_detected(fid), robustly_tests(nl, p, rising, v1, v2))
            << "trial " << trial << " path " << p.id << " rising " << rising;
      }
    }
  }
}

TEST(RobustSimulator, DetectedCountsAccumulate) {
  Netlist nl("acc");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, b});
  nl.mark_output(g);
  RobustPdfSimulator sim(nl);
  EXPECT_EQ(sim.total_faults(), 4u);
  std::uint64_t newly = sim.apply({false, true}, {true, true});  // a rising
  EXPECT_EQ(newly, 1u);
  newly = sim.apply({false, true}, {true, true});  // same pair: nothing new
  EXPECT_EQ(newly, 0u);
  newly = sim.apply({true, true}, {false, true});  // a falling
  EXPECT_EQ(newly, 1u);
  EXPECT_EQ(sim.detected_count(), 2u);
}

TEST(RobustSimulator, RandomExperimentConverges) {
  Netlist nl("exp");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId c = nl.add_input();
  NodeId g1 = nl.add_gate(GateType::And, {a, b});
  NodeId g2 = nl.add_gate(GateType::Or, {g1, c});
  nl.mark_output(g2);
  Rng rng(9);
  auto res = random_robust_pdf(nl, rng, /*stop_window=*/2000, /*max_pairs=*/100000);
  EXPECT_EQ(res.total_faults, 6u);
  // This circuit is fully robustly testable; random pairs find everything.
  EXPECT_EQ(res.detected, 6u);
  EXPECT_GT(res.last_effective_pair, 0u);
  EXPECT_LE(res.last_effective_pair, res.pairs_applied);
}

TEST(RobustSimulator, TestabilityCountOnKnownCircuit) {
  Netlist nl("t");
  NodeId a = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, a});
  nl.mark_output(g);
  auto t = count_robustly_testable(nl);
  EXPECT_EQ(t.total_faults, 4u);
  EXPECT_EQ(t.testable, 2u);  // only the rising faults (see above)
}

}  // namespace
}  // namespace compsyn
