// Streaming event log (--events, compsyn-events-v1): schema round-trip of
// every record type, and jobs-invariance of the deterministic progress
// record sequence (commit-point ticks at a fixed work stride).
//
// Under -DCOMPSYN_TRACE=0 the log degrades to a schema-valid start/finish
// pair; the shape checks below run either way.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/resynth.hpp"
#include "exec/exec.hpp"
#include "gen/circuits.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"

namespace compsyn {
namespace {

std::string temp_path(const std::string& leaf) {
  return testing::TempDir() + "compsyn_events_" + leaf;
}

std::vector<Json> read_log(const std::string& path) {
  std::ifstream is(path);
  std::vector<Json> records;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::string err;
    auto j = Json::parse(line, &err);
    EXPECT_TRUE(j.has_value()) << line << ": " << err;
    if (j.has_value()) records.push_back(std::move(*j));
  }
  return records;
}

std::string str_field(const Json& rec, const char* key) {
  const Json* v = rec.find(key);
  return v == nullptr ? "" : v->as_string();
}

/// Every record carries type / monotonically increasing seq / numeric t_ms;
/// the first is a start record with the schema tag, the last a finish.
void check_envelope(const std::vector<Json>& records) {
  ASSERT_GE(records.size(), 2u);
  std::uint64_t prev_seq = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Json& r = records[i];
    ASSERT_TRUE(r.is_object());
    ASSERT_NE(r.find("type"), nullptr);
    ASSERT_NE(r.find("seq"), nullptr);
    ASSERT_NE(r.find("t_ms"), nullptr);
    const std::uint64_t seq = r.find("seq")->as_u64();
    if (i > 0) {
      EXPECT_GT(seq, prev_seq) << "seq not increasing at " << i;
    }
    prev_seq = seq;
  }
  EXPECT_EQ(str_field(records.front(), "type"), "start");
  EXPECT_EQ(str_field(records.front(), "schema"), kEventSchema);
  EXPECT_NE(records.front().find("pid"), nullptr);
  EXPECT_EQ(str_field(records.back(), "type"), "finish");
  EXPECT_NE(records.back().find("status"), nullptr);
}

TEST(EventLog, MinimalLogIsSchemaValid) {
  const std::string path = temp_path("minimal.jsonl");
  std::string err;
  ASSERT_TRUE(EventLog::open(path, "events_test", &err)) << err;
  EventLog::finish("ok");
  const auto records = read_log(path);
  check_envelope(records);
  EXPECT_EQ(str_field(records.front(), "name"), "events_test");
  EXPECT_EQ(str_field(records.back(), "status"), "ok");
  std::remove(path.c_str());
  obs_set_enabled(false);
}

TEST(EventLog, OpenFailsOnBadPath) {
  std::string err;
  EXPECT_FALSE(EventLog::open(temp_path("no/such/dir/x.jsonl"), "t", &err));
  EXPECT_FALSE(err.empty());
}

#if COMPSYN_TRACE

class EventLogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    EventLog::reset();
    telemetry_set_extended(false);
    telemetry_reset();
    obs_set_enabled(false);
  }
};

TEST_F(EventLogTest, RoundTripsEveryRecordType) {
  const std::string path = temp_path("types.jsonl");
  std::string err;
  ASSERT_TRUE(EventLog::open(path, "events_test", &err)) << err;
  EventLog::phase("resynth", true);
  EventLog::progress("resynth.roots", 16, 64);
  EventLog::heartbeat("resynth.roots", 1.25);
  EventLog::milestone("checkpoint.write");
  EventLog::phase("resynth", false);
  EventLog::finish("degraded");

  const auto records = read_log(path);
  check_envelope(records);
  ASSERT_EQ(records.size(), 7u);
  EXPECT_EQ(str_field(records[1], "type"), "phase");
  EXPECT_EQ(str_field(records[1], "phase"), "resynth");
  EXPECT_EQ(str_field(records[1], "event"), "begin");
  EXPECT_EQ(str_field(records[2], "type"), "progress");
  EXPECT_EQ(records[2].find("done")->as_u64(), 16u);
  EXPECT_EQ(records[2].find("total")->as_u64(), 64u);
  EXPECT_EQ(str_field(records[3], "type"), "heartbeat");
  EXPECT_DOUBLE_EQ(records[3].find("elapsed_s")->as_double(), 1.25);
  EXPECT_EQ(str_field(records[4], "type"), "milestone");
  EXPECT_EQ(str_field(records[4], "what"), "checkpoint.write");
  EXPECT_EQ(str_field(records[5], "event"), "end");
  EXPECT_EQ(str_field(records[6], "status"), "degraded");
  std::remove(path.c_str());
}

TEST_F(EventLogTest, RecordsNothingAfterFinish) {
  const std::string path = temp_path("closed.jsonl");
  ASSERT_TRUE(EventLog::open(path, "events_test"));
  EventLog::finish("ok");
  EventLog::milestone("late");
  EventLog::finish("twice");
  const auto records = read_log(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(str_field(records.back(), "status"), "ok");
  std::remove(path.c_str());
}

TEST_F(EventLogTest, ProgressTicksFollowTheStride) {
  const std::string path = temp_path("stride.jsonl");
  ASSERT_TRUE(EventLog::open(path, "events_test"));
  telemetry_set_extended(true);
  const std::uint64_t total = kProgressStride * 2 + 5;
  for (std::uint64_t done = 1; done <= total; ++done) {
    telemetry_progress("sweep", done, total);
  }
  EventLog::finish("ok");
  const auto records = read_log(path);
  std::vector<std::uint64_t> dones;
  for (const Json& r : records) {
    if (str_field(r, "type") == "progress") {
      dones.push_back(r.find("done")->as_u64());
    }
  }
  // One record per stride multiple plus the final tick.
  EXPECT_EQ(dones, (std::vector<std::uint64_t>{
                       kProgressStride, 2 * kProgressStride, total}));
  std::remove(path.c_str());
}

/// Progress records produced by one resynthesis run, as (done, total) pairs
/// per phase, in order. t_ms and heartbeats (both timing data) are ignored.
std::vector<std::string> progress_sequence(unsigned jobs) {
  const std::string path = temp_path("jobs" + std::to_string(jobs) + ".jsonl");
  EXPECT_TRUE(EventLog::open(path, "events_test"));
  telemetry_set_extended(true);
  set_jobs(jobs);
  Netlist nl = make_benchmark("alu4");
  (void)procedure2(nl, 5);
  set_jobs(1);
  EventLog::finish("ok");
  std::vector<std::string> out;
  for (const Json& r : read_log(path)) {
    const std::string type = str_field(r, "type");
    if (type != "progress") continue;
    out.push_back(str_field(r, "phase") + ":" +
                  std::to_string(r.find("done")->as_u64()) + "/" +
                  std::to_string(r.find("total")->as_u64()));
  }
  std::remove(path.c_str());
  return out;
}

TEST_F(EventLogTest, ProgressSequenceIsJobsInvariant) {
  const auto serial = progress_sequence(1);
  const auto parallel = progress_sequence(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

#endif  // COMPSYN_TRACE

}  // namespace
}  // namespace compsyn
