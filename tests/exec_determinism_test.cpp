// End-to-end determinism suite for the parallel execution layer: every
// pipeline that fans out over exec/ must produce byte-identical results --
// netlists, stats, detection records, and run reports (timings masked) --
// at --jobs=1, 2, and 8. The TSan CI job runs this same suite to certify
// that the identical answers are not produced by benign-looking races.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "atpg/redundancy.hpp"
#include "bench_io/bench_io.hpp"
#include "core/resynth.hpp"
#include "core/sdc.hpp"
#include "delay/robust.hpp"
#include "exec/exec.hpp"
#include "faults/fault.hpp"
#include "faults/fault_sim.hpp"
#include "gen/circuits.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "report_mask.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

const unsigned kJobCounts[] = {1, 2, 8};

/// Restores the job count (and clears recorded observability) around a test.
struct JobsGuard {
  JobsGuard() : prev(jobs()) {}
  ~JobsGuard() {
    set_jobs(prev);
    Counters::reset();
    Trace::reset();
    obs_set_enabled(false);
  }
  unsigned prev;
};

/// Runs `body` once per job count and asserts every run returned the same
/// string as the --jobs=1 reference.
template <typename Body>
void expect_jobs_invariant(const char* what, Body&& body) {
  std::string reference;
  for (unsigned j : kJobCounts) {
    set_jobs(j);
    const std::string got = body();
    if (j == 1) {
      reference = got;
      ASSERT_FALSE(reference.empty()) << what;
    } else {
      EXPECT_EQ(got, reference) << what << " differs at jobs=" << j;
    }
  }
}

std::string resynth_fingerprint(const std::string& circuit, ResynthObjective obj,
                                bool use_sdc) {
  Netlist nl = make_benchmark(circuit);
  ResynthOptions opt;
  opt.objective = obj;
  opt.k = 5;
  opt.allow_gate_increase = obj != ResynthObjective::Gates;
  opt.use_sdc = use_sdc;
  const ResynthStats st = resynthesize(nl, opt);
  std::ostringstream os;
  os << "passes=" << st.passes << " repl=" << st.replacements
     << " cones=" << st.cones_considered << " cmp=" << st.comparison_cones
     << " gates=" << st.gates_before << "->" << st.gates_after
     << " paths=" << st.paths_before << "->" << st.paths_after << "\n"
     << write_bench_string(nl.compacted());
  return os.str();
}

TEST(ExecDeterminism, ResynthGatesObjective) {
  JobsGuard guard;
  for (const char* c : {"c17", "s27", "add8", "syn150"}) {
    expect_jobs_invariant(c, [&] {
      return resynth_fingerprint(c, ResynthObjective::Gates, /*use_sdc=*/false);
    });
  }
}

TEST(ExecDeterminism, ResynthPathsObjective) {
  JobsGuard guard;
  for (const char* c : {"cmp8", "mux4"}) {
    expect_jobs_invariant(c, [&] {
      return resynth_fingerprint(c, ResynthObjective::Paths, /*use_sdc=*/false);
    });
  }
}

TEST(ExecDeterminism, ResynthWithSdcOracle) {
  // use_sdc routes cone evaluation through a reachability oracle; the
  // few-input circuits get the exact table (concurrent queries), so this
  // exercises the in-region DC identification path.
  JobsGuard guard;
  for (const char* c : {"s27", "mux4"}) {
    expect_jobs_invariant(c, [&] {
      return resynth_fingerprint(c, ResynthObjective::Gates, /*use_sdc=*/true);
    });
  }
}

TEST(ExecDeterminism, FaultSimulation) {
  JobsGuard guard;
  for (const char* c : {"c17", "add8", "syn150"}) {
    expect_jobs_invariant(c, [&] {
      Netlist nl = make_benchmark(c);
      Rng rng(0xFA571);
      const SafExperimentResult res =
          random_saf_experiment(nl, rng, /*max_patterns=*/1 << 12);
      // Include every fault's first detecting pattern, not just the summary:
      // the merge order inside each block must match the serial sweep.
      FaultSimulator sim(nl, enumerate_faults(nl, /*collapse=*/true));
      Rng rng2(0xFA571);
      std::vector<std::uint64_t> pi(nl.inputs().size());
      std::ostringstream os;
      os << "total=" << res.total_faults << " remaining=" << res.remaining
         << " last_eff=" << res.last_effective_pattern
         << " applied=" << res.patterns_applied << "\n";
      for (unsigned b = 0; b < 8; ++b) {
        for (auto& w : pi) w = rng2.next();
        for (std::size_t fi : sim.simulate_block(pi, 64ull * b)) {
          os << fi << "@" << sim.detecting_pattern(fi) << " ";
        }
        os << "\n";
      }
      return os.str();
    });
  }
}

TEST(ExecDeterminism, RedundancyRemoval) {
  JobsGuard guard;
  for (const char* c : {"s27", "add8", "syn150"}) {
    expect_jobs_invariant(c, [&] {
      Netlist nl = make_benchmark(c);
      RedundancyRemovalOptions opt;
      opt.sat_fallback = true;
      const RedundancyRemovalStats st = remove_redundancies(nl, opt);
      std::ostringstream os;
      os << "removed=" << st.removed << " checked=" << st.faults_checked
         << " aborted=" << st.aborted << " sat_calls=" << st.sat_fallback_calls
         << " sat_proofs=" << st.sat_proved_untestable
         << " sat_tests=" << st.sat_found_tests << " sat_unknown=" << st.sat_unknown
         << " unresolved=" << st.aborted_unresolved
         << " irredundant=" << st.irredundant << "\n"
         << write_bench_string(nl.compacted());
      return os.str();
    });
  }
}

TEST(ExecDeterminism, RobustPathDelayTestability) {
  JobsGuard guard;
  for (const char* c : {"c17", "s27", "cmp8"}) {
    expect_jobs_invariant(c, [&] {
      Netlist nl = make_benchmark(c);
      const PdfTestability t = count_robustly_testable(nl, /*exhaustive_limit=*/10);
      std::ostringstream os;
      os << "faults=" << t.total_faults << " testable=" << t.testable;
      return os.str();
    });
  }
}

// masked_report_dump lives in report_mask.hpp, shared with the
// golden-reference flow tests.

TEST(ExecDeterminism, RunReportCountersAndTables) {
  // The full observability surface: counters, spans (masked), and report
  // records must be byte-identical at any job count.
  JobsGuard guard;
  expect_jobs_invariant("report", [&] {
    Counters::reset();
    Trace::reset();
    obs_set_enabled(true);
    RunReport report("exec_determinism");

    Netlist nl = make_benchmark("syn150");
    RedundancyRemovalOptions rr;
    rr.sat_fallback = true;
    remove_redundancies(nl, rr);
    ResynthOptions opt;
    opt.k = 5;
    resynthesize(nl, opt);
    Rng rng(0xBEEF);
    random_saf_experiment(nl, rng, 1 << 10);

    return label_ordered_spans(masked_report_dump(report.to_json()));
  });
}

}  // namespace
}  // namespace compsyn
