// Unit tests for the deterministic parallel execution layer (exec/).
// Everything here runs at several job counts and asserts byte-identical
// results; the TSan CI job runs the same suite to certify data-race freedom.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/exec.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// Restores the job count on scope exit so one test cannot leak its setting
/// into the next.
struct JobsGuard {
  JobsGuard() : prev(jobs()) {}
  ~JobsGuard() { set_jobs(prev); }
  unsigned prev;
};

TEST(Exec, DefaultIsSerial) {
  EXPECT_EQ(jobs(), 1u);
  EXPECT_FALSE(in_parallel_region());
}

TEST(Exec, ChunkCount) {
  using exec_detail::chunk_count;
  EXPECT_EQ(chunk_count(0, 16), 0u);
  EXPECT_EQ(chunk_count(1, 16), 1u);
  EXPECT_EQ(chunk_count(16, 16), 1u);
  EXPECT_EQ(chunk_count(17, 16), 2u);
  EXPECT_EQ(chunk_count(5, 0), 5u);  // grain clamps to 1
}

TEST(Exec, EmptyRange) {
  JobsGuard guard;
  for (unsigned j : {1u, 4u}) {
    set_jobs(j);
    bool ran = false;
    parallel_for(0, 16, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
    EXPECT_TRUE(parallel_map<int>(0, 16, [](std::size_t) { return 1; }).empty());
    EXPECT_EQ(parallel_reduce<int>(
                  0, 16, 7, [](std::size_t) { return 1; },
                  [](int a, int b) { return a + b; }),
              7);
  }
}

TEST(Exec, SingleItem) {
  JobsGuard guard;
  for (unsigned j : {1u, 4u}) {
    set_jobs(j);
    const auto r = parallel_map<std::size_t>(1, 16, [](std::size_t i) { return i + 41; });
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], 41u);
  }
}

TEST(Exec, MoreWorkersThanChunks) {
  // 3 items at grain 1 = 3 chunks, run with far more workers than chunks.
  JobsGuard guard;
  set_jobs(16);
  const auto r = parallel_map<std::size_t>(3, 1, [](std::size_t i) { return i * i; });
  EXPECT_EQ(r, (std::vector<std::size_t>{0, 1, 4}));
}

TEST(Exec, MapPreservesIndexOrder) {
  JobsGuard guard;
  std::vector<int> expected(1000);
  std::iota(expected.begin(), expected.end(), 0);
  for (unsigned j : {1u, 2u, 8u}) {
    set_jobs(j);
    const auto r =
        parallel_map<int>(1000, 7, [](std::size_t i) { return static_cast<int>(i); });
    EXPECT_EQ(r, expected) << "jobs=" << j;
  }
}

TEST(Exec, ForVisitsEveryIndexOnce) {
  JobsGuard guard;
  for (unsigned j : {1u, 2u, 8u}) {
    set_jobs(j);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    parallel_for(hits.size(), 16, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " jobs=" << j;
    }
  }
}

TEST(Exec, ExceptionPropagatesLowestChunkWins) {
  JobsGuard guard;
  for (unsigned j : {1u, 4u}) {
    set_jobs(j);
    try {
      parallel_for(100, 1, [](std::size_t i) {
        if (i == 23 || i == 77) throw std::runtime_error("boom " + std::to_string(i));
      });
      FAIL() << "no exception at jobs=" << j;
    } catch (const std::runtime_error& e) {
      // Chunk 77 may or may not have run, but the rethrown exception is
      // always the lowest-index one.
      EXPECT_STREQ(e.what(), "boom 23") << "jobs=" << j;
    }
    // The pool must still be usable after a throwing region.
    EXPECT_EQ(parallel_reduce<int>(
                  10, 1, 0, [](std::size_t) { return 1; },
                  [](int a, int b) { return a + b; }),
              10);
  }
}

TEST(Exec, NestedParallelismDegradesToSerial) {
  JobsGuard guard;
  set_jobs(4);
  std::vector<int> saw_region(64, 0);
  const auto outer = parallel_map<int>(64, 4, [&](std::size_t i) {
    saw_region[i] = in_parallel_region() ? 1 : 0;
    // Nested call: must run inline on this thread, never spawn or deadlock.
    return parallel_reduce<int>(
        10, 2, static_cast<int>(i), [](std::size_t k) { return static_cast<int>(k); },
        [](int a, int b) { return a + b; });
  });
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(outer[i], static_cast<int>(i) + 45);
    EXPECT_EQ(saw_region[i], 1);
  }
  EXPECT_FALSE(in_parallel_region());
}

TEST(Exec, SetJobsInsideRegionThrows) {
  JobsGuard guard;
  set_jobs(2);
  std::atomic<int> threw{0};
  parallel_for(8, 1, [&](std::size_t) {
    try {
      set_jobs(3);
    } catch (const std::logic_error&) {
      threw.fetch_add(1);
    }
  });
  EXPECT_EQ(threw.load(), 8);
}

TEST(Exec, ShuffleReduceMatchesSerialAnswer) {
  // 10k tasks with data-dependent per-item work so chunks finish out of
  // order under real parallelism. The fold is deliberately non-associative
  // (a + 3b): the contract is that the fold SHAPE is fixed by (n, grain)
  // alone, so every job count must reproduce the --jobs=1 answer bit for
  // bit even when the merge order would matter.
  constexpr std::size_t kTasks = 10000;
  std::vector<std::uint64_t> work(kTasks);
  Rng rng(0xE5EC);
  for (auto& w : work) w = rng.next();

  auto item = [&](std::size_t i) {
    std::uint64_t x = work[i] | 1;
    for (unsigned r = 0; r < (work[i] & 63); ++r) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    return x;
  };
  auto merge = [](std::uint64_t a, std::uint64_t b) { return a + 3 * b; };

  JobsGuard guard;
  set_jobs(1);
  const std::uint64_t serial =
      parallel_reduce<std::uint64_t>(kTasks, 32, 0, item, merge);
  for (unsigned j : {2u, 3u, 8u}) {
    set_jobs(j);
    EXPECT_EQ(parallel_reduce<std::uint64_t>(kTasks, 32, 0, item, merge), serial)
        << "jobs=" << j;
  }
}

TEST(Exec, GrainChangesChunkingNotResult) {
  JobsGuard guard;
  set_jobs(4);
  std::vector<std::uint64_t> expected;
  for (std::size_t g : {1u, 5u, 64u, 10000u}) {
    auto r = parallel_map<std::uint64_t>(777, g, [](std::size_t i) {
      return i * 2654435761u;
    });
    if (expected.empty()) {
      expected = std::move(r);
    } else {
      EXPECT_EQ(r, expected) << "grain=" << g;
    }
  }
}

TEST(Exec, SetJobsIsIdempotentAndShrinks) {
  JobsGuard guard;
  set_jobs(4);
  set_jobs(4);
  EXPECT_EQ(jobs(), 4u);
  set_jobs(2);
  EXPECT_EQ(jobs(), 2u);
  const auto r = parallel_map<int>(10, 1, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(r.size(), 10u);
  set_jobs(0);  // clamps to 1
  EXPECT_EQ(jobs(), 1u);
}

}  // namespace
}  // namespace compsyn
