#include <gtest/gtest.h>

#include "core/two_level.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "paths/paths.hpp"
#include "rar/factor.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// Evaluates a factored expression on a minterm (MSB-first convention).
bool eval_expr(const FactorExpr& e, std::uint32_t m, unsigned n) {
  switch (e.kind) {
    case FactorExpr::Literal: {
      const bool v = (m >> (n - 1 - e.var)) & 1u;
      return v == e.positive;
    }
    case FactorExpr::And: {
      for (const auto& a : e.args) {
        if (!eval_expr(*a, m, n)) return false;
      }
      return true;
    }
    case FactorExpr::Or: {
      for (const auto& a : e.args) {
        if (eval_expr(*a, m, n)) return true;
      }
      return false;
    }
  }
  return false;
}

TEST(QuickFactor, SingleCube) {
  // x1 ~x3 over 3 vars.
  auto e = quick_factor({Cube{0b101, 0b100}}, 3);
  EXPECT_EQ(e->equiv_gates(), 1u);
  EXPECT_EQ(e->literal_occurrences(), 2u);
  for (std::uint32_t m = 0; m < 8; ++m) {
    EXPECT_EQ(eval_expr(*e, m, 3), (m & 4u) && !(m & 1u)) << m;
  }
}

TEST(QuickFactor, SharesCommonLiteral) {
  // ab + ac -> a(b + c): 2 equivalent gates instead of 3.
  const std::vector<Cube> cover{{0b110, 0b110}, {0b101, 0b101}};
  auto e = quick_factor(cover, 3);
  EXPECT_EQ(e->equiv_gates(), 2u);
  EXPECT_EQ(e->literal_occurrences(), 3u);
}

TEST(QuickFactor, ThresholdBecomesChain) {
  // >=3 over 4 vars: x1 + x2 + x3 x4 factors to 3 equivalent gates
  // (what the comparison unit achieves too).
  TruthTable f = TruthTable::from_function(4, [](std::uint32_t m) { return m >= 3; });
  auto cover = irredundant_cover(f);
  auto e = quick_factor(cover, 4);
  EXPECT_LE(e->equiv_gates(), 3u);
  for (std::uint32_t m = 0; m < 16; ++m) EXPECT_EQ(eval_expr(*e, m, 4), m >= 3);
}

TEST(QuickFactor, UnitLiteralAbsorbsQuotient) {
  // a + ab == a.
  const std::vector<Cube> cover{{0b10, 0b10}, {0b11, 0b11}};
  auto e = quick_factor(cover, 2);
  for (std::uint32_t m = 0; m < 4; ++m) {
    EXPECT_EQ(eval_expr(*e, m, 2), (m & 2u) != 0);
  }
}

TEST(QuickFactor, MatchesCoverOnRandomFunctions) {
  Rng rng(21);
  for (int trial = 0; trial < 300; ++trial) {
    const unsigned n = 2 + trial % 4;
    TruthTable f = TruthTable::from_function(
        n, [&](std::uint32_t) { return rng.flip(); });
    if (f.is_const_zero() || f.is_const_one()) continue;
    auto cover = irredundant_cover(f);
    auto e = quick_factor(cover, n);
    for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
      ASSERT_EQ(eval_expr(*e, m, n), f.get(m)) << f.to_bits() << " @ " << m;
    }
    // Factoring never uses more gates than the flat SOP.
    std::uint64_t sop_gates = cover.size() - 1;
    for (const Cube& c : cover) {
      sop_gates += c.literal_count() > 0 ? c.literal_count() - 1 : 0;
    }
    EXPECT_LE(e->equiv_gates(), sop_gates) << f.to_bits();
  }
}

TEST(BuildFactored, MatchesExpression) {
  Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    const unsigned n = 3 + trial % 3;
    TruthTable f = TruthTable::from_function(
        n, [&](std::uint32_t) { return rng.flip(); });
    if (f.is_const_zero() || f.is_const_one()) continue;
    auto e = quick_factor(irredundant_cover(f), n);
    Netlist nl("ff");
    std::vector<NodeId> vars;
    for (unsigned v = 0; v < n; ++v) vars.push_back(nl.add_input());
    NodeId out = build_factored(nl, *e, vars);
    nl.mark_output(out);
    for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
      std::vector<std::uint64_t> pi(n);
      for (unsigned v = 0; v < n; ++v) pi[v] = ((m >> (n - 1 - v)) & 1u) ? ~0ull : 0;
      ASSERT_EQ((nl.simulate(pi)[out] & 1ull) != 0, f.get(m));
    }
  }
}

TEST(FactorCones, ReducesGatesAndPreservesFunction) {
  Netlist nl = make_benchmark("syn150");
  Netlist ref = nl.compacted();
  const std::uint64_t before = nl.equivalent_gate_count();
  FactorConesStats st = factor_cones(nl);
  EXPECT_EQ(st.gates_before, before);
  EXPECT_LE(st.gates_after, before);
  EXPECT_GT(st.replacements, 0u);
  Rng rng(23);
  auto res = check_equivalent(nl, ref, rng, 128);
  EXPECT_TRUE(res.equivalent) << res.message;
  EXPECT_TRUE(nl.check().empty()) << nl.check();
}

TEST(FactorCones, HandlesNonComparisonFunctions) {
  // A 3-input majority SOP is not a comparison function, so Procedure 2
  // leaves it alone -- but factoring can still rewrite it.
  Netlist nl("maj");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId c = nl.add_input();
  NodeId t1 = nl.add_gate(GateType::And, {a, b});
  NodeId t2 = nl.add_gate(GateType::And, {a, c});
  NodeId t3 = nl.add_gate(GateType::And, {b, c});
  NodeId f = nl.add_gate(GateType::Or, {t1, t2, t3});
  nl.mark_output(f);
  Netlist ref = nl.compacted();
  factor_cones(nl);
  Rng rng(24);
  auto res = check_equivalent(nl, ref, rng);
  EXPECT_TRUE(res.equivalent) << res.message;
  EXPECT_TRUE(res.exhaustive);
  // maj = ab + c(a + b): 3 equivalent gates vs the SOP's 5.
  EXPECT_LE(nl.equivalent_gate_count(), 4u);
}

}  // namespace
}  // namespace compsyn
