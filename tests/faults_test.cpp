#include <gtest/gtest.h>

#include <set>

#include "bench_io/bench_io.hpp"
#include "faults/fault.hpp"
#include "faults/fault_sim.hpp"
#include "netlist/equivalence.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

Netlist c17() {
  return read_bench_string(R"(
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)", "c17");
}

TEST(FaultList, C17UncollapsedCount) {
  Netlist nl = c17();
  auto faults = enumerate_faults(nl, /*collapse=*/false);
  // Lines: 11 stems (5 PI + 6 gates) = 22 stem faults. Multi-fanout stems:
  // 3 (fanout 2), 11 (fanout 2), 16 (fanout 2) -> 6 branches -> 12 faults.
  EXPECT_EQ(faults.size(), 34u);
}

TEST(FaultList, C17CollapsedCount) {
  // The classic collapsed fault count for c17 is 22.
  Netlist nl = c17();
  auto faults = enumerate_faults(nl, /*collapse=*/true);
  EXPECT_EQ(faults.size(), 22u);
}

TEST(FaultList, CollapseKeepsOnePerClass) {
  // NOT chain: in s-a-0 == out s-a-1 etc., so a 3-gate chain with one PI and
  // one PO has 8 uncollapsed but only 2 collapsed faults.
  Netlist nl("chain");
  NodeId a = nl.add_input("a");
  NodeId n1 = nl.add_gate(GateType::Not, {a});
  NodeId n2 = nl.add_gate(GateType::Not, {n1});
  NodeId n3 = nl.add_gate(GateType::Not, {n2});
  nl.mark_output(n3);
  EXPECT_EQ(enumerate_faults(nl, false).size(), 8u);
  EXPECT_EQ(enumerate_faults(nl, true).size(), 2u);
}

TEST(FaultList, DeadAndConstantNodesExcluded) {
  Netlist nl("k");
  NodeId a = nl.add_input();
  NodeId k = nl.add_const(true);
  NodeId g = nl.add_gate(GateType::And, {a, k});
  NodeId junk = nl.add_gate(GateType::Not, {a});
  (void)junk;
  nl.mark_output(g);
  nl.sweep();
  for (const auto& f : enumerate_faults(nl, false)) {
    EXPECT_FALSE(nl.is_dead(f.node));
    if (!f.is_stem()) {
      const NodeId src = nl.node(f.node).fanins[static_cast<std::size_t>(f.pin)];
      EXPECT_NE(nl.node(src).type, GateType::Const1);
    }
  }
}

TEST(FaultList, ToStringIsReadable) {
  Netlist nl = c17();
  auto faults = enumerate_faults(nl, false);
  const std::string s = to_string(nl, faults.front());
  EXPECT_NE(s.find("s-a-"), std::string::npos);
}

/// Reference: serial fault simulation by building the faulty circuit.
bool serial_detects(const Netlist& nl, const StuckFault& f,
                    const std::vector<std::uint64_t>& pi, std::uint64_t bit) {
  // Good value.
  auto good = nl.simulate(pi);
  // Faulty: simulate manually with the fault injected.
  std::vector<std::uint64_t> val(nl.size(), 0);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) val[nl.inputs()[i]] = pi[i];
  if (f.is_stem() && nl.node(f.node).type == GateType::Input) {
    val[f.node] = f.value ? ~0ull : 0;
  }
  std::vector<std::uint64_t> ins;
  for (NodeId n : nl.topo_order()) {
    const Node& nd = nl.node(n);
    if (nd.type == GateType::Input) continue;
    if (nd.type == GateType::Const0) { val[n] = 0; continue; }
    if (nd.type == GateType::Const1) { val[n] = ~0ull; continue; }
    ins.clear();
    for (std::size_t p = 0; p < nd.fanins.size(); ++p) {
      std::uint64_t v = val[nd.fanins[p]];
      if (!f.is_stem() && f.node == n && static_cast<int>(p) == f.pin) {
        v = f.value ? ~0ull : 0;
      }
      ins.push_back(v);
    }
    val[n] = eval_gate(nd.type, ins);
    if (f.is_stem() && f.node == n) val[n] = f.value ? ~0ull : 0;
  }
  for (NodeId o : nl.outputs()) {
    if (((good[o] ^ val[o]) >> bit) & 1ull) return true;
  }
  return false;
}

TEST(FaultSim, MatchesSerialReferenceOnC17) {
  Netlist nl = c17();
  auto faults = enumerate_faults(nl, false);
  Rng rng(42);
  std::vector<std::uint64_t> pi(nl.inputs().size());
  for (auto& w : pi) w = rng.next();

  // Reference: first detecting bit per fault under this single block.
  FaultSimulator sim(nl, faults);
  auto newly = sim.simulate_block(pi, 0);
  std::set<std::size_t> detected(newly.begin(), newly.end());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    bool ref = false;
    std::uint64_t first_bit = 0;
    for (std::uint64_t b = 0; b < 64 && !ref; ++b) {
      if (serial_detects(nl, faults[fi], pi, b)) {
        ref = true;
        first_bit = b;
      }
    }
    EXPECT_EQ(detected.count(fi) != 0, ref) << to_string(nl, faults[fi]);
    if (ref) {
      EXPECT_EQ(sim.detecting_pattern(fi), first_bit) << to_string(nl, faults[fi]);
    }
  }
}

TEST(FaultSim, MatchesSerialReferenceOnRandomCircuits) {
  Rng gen(7);
  for (int trial = 0; trial < 8; ++trial) {
    Netlist nl("r");
    std::vector<NodeId> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(nl.add_input());
    const GateType kinds[] = {GateType::And, GateType::Or, GateType::Nand,
                              GateType::Nor, GateType::Not, GateType::Xor};
    for (int i = 0; i < 30; ++i) {
      const GateType t = kinds[gen.below(6)];
      const unsigned arity = t == GateType::Not ? 1 : 2;
      std::vector<NodeId> fi;
      for (unsigned j = 0; j < arity; ++j) fi.push_back(pool[gen.below(pool.size())]);
      pool.push_back(nl.add_gate(t, fi));
    }
    nl.mark_output(pool[pool.size() - 1]);
    nl.mark_output(pool[pool.size() - 2]);
    nl.sweep();

    auto faults = enumerate_faults(nl, false);
    std::vector<std::uint64_t> pi(nl.inputs().size());
    for (auto& w : pi) w = gen.next();
    FaultSimulator sim(nl, faults);
    auto newly = sim.simulate_block(pi, 0);
    std::set<std::size_t> detected(newly.begin(), newly.end());
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      bool ref = false;
      for (std::uint64_t b = 0; b < 64 && !ref; ++b) {
        ref = serial_detects(nl, faults[fi], pi, b);
      }
      ASSERT_EQ(detected.count(fi) != 0, ref)
          << "trial " << trial << " " << to_string(nl, faults[fi]);
    }
  }
}

TEST(FaultSim, AccumulatesAcrossBlocks) {
  Netlist nl = c17();
  FaultSimulator sim(nl, enumerate_faults(nl, true));
  Rng rng(5);
  std::vector<std::uint64_t> pi(5);
  std::size_t detected_before = 0;
  for (int block = 0; block < 4; ++block) {
    for (auto& w : pi) w = rng.next();
    sim.simulate_block(pi, static_cast<std::uint64_t>(block) * 64);
    EXPECT_GE(sim.detected_count(), detected_before);
    detected_before = sim.detected_count();
  }
  // c17 is tiny: 256 random patterns detect everything.
  EXPECT_EQ(sim.remaining(), 0u);
}

TEST(FaultSim, PartialBlockMatchesSerialReference) {
  // A final block with fewer than 64 patterns: only the low num_patterns
  // bits may activate or detect anything.
  Netlist nl = c17();
  auto faults = enumerate_faults(nl, false);
  Rng rng(42);
  std::vector<std::uint64_t> pi(nl.inputs().size());
  for (auto& w : pi) w = rng.next();
  const unsigned kApplied = 11;

  FaultSimulator sim(nl, faults);
  auto newly = sim.simulate_block(pi, 0, kApplied);
  std::set<std::size_t> detected(newly.begin(), newly.end());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    bool ref = false;
    std::uint64_t first_bit = 0;
    for (std::uint64_t b = 0; b < kApplied && !ref; ++b) {
      if (serial_detects(nl, faults[fi], pi, b)) {
        ref = true;
        first_bit = b;
      }
    }
    EXPECT_EQ(detected.count(fi) != 0, ref) << to_string(nl, faults[fi]);
    if (ref) {
      EXPECT_EQ(sim.detecting_pattern(fi), first_bit) << to_string(nl, faults[fi]);
    }
  }
  // Some fault of c17 is detected only past bit kApplied under this seed;
  // the partial block must find strictly fewer faults than the full one.
  FaultSimulator full(nl, faults);
  EXPECT_LT(detected.size(), full.simulate_block(pi, 0).size());
}

TEST(FaultSim, ExperimentStopsAtNonMultipleOf64) {
  // max_patterns not a multiple of 64: the final block is partial and the
  // experiment reports exactly max_patterns applied, never rounded up.
  Netlist nl = c17();
  Rng rng(9);
  auto res = random_saf_experiment(nl, rng, /*max_patterns=*/70);
  EXPECT_LE(res.patterns_applied, 70u);
  EXPECT_LE(res.last_effective_pattern, res.patterns_applied);
}

TEST(FaultSim, RandomExperimentDetectsAllOnC17) {
  Netlist nl = c17();
  Rng rng(9);
  auto res = random_saf_experiment(nl, rng, /*max_patterns=*/1 << 16);
  EXPECT_EQ(res.total_faults, 22u);
  EXPECT_EQ(res.remaining, 0u);
  EXPECT_GT(res.last_effective_pattern, 0u);
  EXPECT_LE(res.last_effective_pattern, res.patterns_applied);
}

TEST(FaultSim, UndetectableFaultStaysUndetected) {
  // y = OR(a, NOT a) is constant 1: the s-a-1 fault on y is undetectable.
  Netlist nl("red");
  NodeId a = nl.add_input();
  NodeId na = nl.add_gate(GateType::Not, {a});
  NodeId y = nl.add_gate(GateType::Or, {a, na});
  NodeId g = nl.add_gate(GateType::And, {y, a});
  nl.mark_output(g);
  std::vector<StuckFault> faults{{y, -1, true}};
  FaultSimulator sim(nl, faults);
  Rng rng(3);
  std::vector<std::uint64_t> pi(1);
  for (int i = 0; i < 16; ++i) {
    pi[0] = rng.next();
    sim.simulate_block(pi, static_cast<std::uint64_t>(i) * 64);
  }
  EXPECT_EQ(sim.detected_count(), 0u);
}

TEST(FaultSim, DeterministicLastEffectivePattern) {
  Netlist nl = c17();
  Rng r1(123), r2(123);
  auto a = random_saf_experiment(nl, r1, 1 << 14);
  auto b = random_saf_experiment(nl, r2, 1 << 14);
  EXPECT_EQ(a.last_effective_pattern, b.last_effective_pattern);
  EXPECT_EQ(a.remaining, b.remaining);
}

}  // namespace
}  // namespace compsyn
