#include <gtest/gtest.h>

#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "paths/paths.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

TEST(Gen, C17Structure) {
  Netlist nl = make_c17();
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.gate_count(), 6u);
  EXPECT_EQ(count_paths(nl).total, 11u);
}

TEST(Gen, S27ScanConverted) {
  Netlist nl = make_s27();
  EXPECT_EQ(nl.inputs().size(), 7u);
  EXPECT_EQ(nl.outputs().size(), 4u);
  EXPECT_TRUE(nl.check().empty()) << nl.check();
}

TEST(Gen, RippleAdderAddsCorrectly) {
  const unsigned bits = 4;
  Netlist nl = make_ripple_adder(bits);
  ASSERT_EQ(nl.inputs().size(), 2 * bits + 1);
  ASSERT_EQ(nl.outputs().size(), bits + 1);
  for (unsigned a = 0; a < 16; a += 3) {
    for (unsigned b = 0; b < 16; b += 5) {
      for (unsigned cin = 0; cin < 2; ++cin) {
        std::vector<std::uint64_t> pi(2 * bits + 1, 0);
        for (unsigned i = 0; i < bits; ++i) {
          pi[i] = (a >> i) & 1u ? ~0ull : 0;
          pi[bits + i] = (b >> i) & 1u ? ~0ull : 0;
        }
        pi[2 * bits] = cin ? ~0ull : 0;
        auto v = nl.simulate(pi);
        unsigned sum = 0;
        for (unsigned i = 0; i <= bits; ++i) {
          sum |= static_cast<unsigned>(v[nl.outputs()[i]] & 1ull) << i;
        }
        EXPECT_EQ(sum, a + b + cin) << a << "+" << b << "+" << cin;
      }
    }
  }
}

TEST(Gen, ComparatorOrdersCorrectly) {
  const unsigned bits = 3;
  Netlist nl = make_comparator(bits);
  ASSERT_EQ(nl.outputs().size(), 3u);
  for (unsigned a = 0; a < 8; ++a) {
    for (unsigned b = 0; b < 8; ++b) {
      std::vector<std::uint64_t> pi(2 * bits);
      for (unsigned i = 0; i < bits; ++i) {
        pi[i] = (a >> i) & 1u ? ~0ull : 0;
        pi[bits + i] = (b >> i) & 1u ? ~0ull : 0;
      }
      auto v = nl.simulate(pi);
      EXPECT_EQ(v[nl.outputs()[0]] & 1ull, a < b ? 1u : 0u) << a << "<" << b;
      EXPECT_EQ(v[nl.outputs()[1]] & 1ull, a == b ? 1u : 0u) << a << "==" << b;
      EXPECT_EQ(v[nl.outputs()[2]] & 1ull, a > b ? 1u : 0u) << a << ">" << b;
    }
  }
}

TEST(Gen, DecoderOneHot) {
  Netlist nl = make_decoder(3);
  ASSERT_EQ(nl.outputs().size(), 8u);
  for (unsigned s = 0; s < 8; ++s) {
    std::vector<std::uint64_t> pi(3);
    for (unsigned i = 0; i < 3; ++i) pi[i] = (s >> i) & 1u ? ~0ull : 0;
    auto v = nl.simulate(pi);
    for (unsigned o = 0; o < 8; ++o) {
      EXPECT_EQ(v[nl.outputs()[o]] & 1ull, o == s ? 1u : 0u) << "s=" << s;
    }
  }
}

TEST(Gen, MuxSelectsCorrectly) {
  Netlist nl = make_mux_tree(2);
  ASSERT_EQ(nl.inputs().size(), 6u);  // 4 data + 2 select
  for (unsigned s = 0; s < 4; ++s) {
    for (unsigned d = 0; d < 16; ++d) {
      std::vector<std::uint64_t> pi(6);
      for (unsigned i = 0; i < 4; ++i) pi[i] = (d >> i) & 1u ? ~0ull : 0;
      for (unsigned i = 0; i < 2; ++i) pi[4 + i] = (s >> i) & 1u ? ~0ull : 0;
      auto v = nl.simulate(pi);
      EXPECT_EQ(v[nl.outputs()[0]] & 1ull, (d >> s) & 1u) << "s=" << s << " d=" << d;
    }
  }
}

TEST(Gen, ParityTreeComputesParity) {
  Netlist nl = make_parity_tree(5);
  for (unsigned x = 0; x < 32; ++x) {
    std::vector<std::uint64_t> pi(5);
    for (unsigned i = 0; i < 5; ++i) pi[i] = (x >> i) & 1u ? ~0ull : 0;
    auto v = nl.simulate(pi);
    EXPECT_EQ(v[nl.outputs()[0]] & 1ull, __builtin_popcount(x) & 1u);
  }
}

TEST(Gen, AluSliceOpsCorrect) {
  const unsigned bits = 3;
  Netlist nl = make_alu_slice(bits);
  for (unsigned op = 0; op < 4; ++op) {
    for (unsigned a = 0; a < 8; a += 3) {
      for (unsigned b = 0; b < 8; b += 2) {
        std::vector<std::uint64_t> pi(2 * bits + 2);
        for (unsigned i = 0; i < bits; ++i) {
          pi[i] = (a >> i) & 1u ? ~0ull : 0;
          pi[bits + i] = (b >> i) & 1u ? ~0ull : 0;
        }
        pi[2 * bits] = op & 1u ? ~0ull : 0;
        pi[2 * bits + 1] = op & 2u ? ~0ull : 0;
        auto v = nl.simulate(pi);
        unsigned y = 0;
        for (unsigned i = 0; i < bits; ++i) {
          y |= static_cast<unsigned>(v[nl.outputs()[i]] & 1ull) << i;
        }
        unsigned expect = 0;
        switch (op) {
          case 0: expect = a & b; break;
          case 1: expect = a | b; break;
          case 2: expect = a ^ b; break;
          case 3: expect = (a + b) & 7u; break;
        }
        EXPECT_EQ(y, expect) << "op=" << op << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Gen, MultiplierMultipliesCorrectly) {
  const unsigned bits = 4;
  Netlist nl = make_multiplier(bits);
  ASSERT_EQ(nl.inputs().size(), 2 * bits);
  ASSERT_EQ(nl.outputs().size(), 2 * bits);
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 0; b < 16; ++b) {
      std::vector<std::uint64_t> pi(2 * bits);
      for (unsigned i = 0; i < bits; ++i) {
        pi[i] = (a >> i) & 1u ? ~0ull : 0;
        pi[bits + i] = (b >> i) & 1u ? ~0ull : 0;
      }
      auto v = nl.simulate(pi);
      unsigned p = 0;
      for (unsigned i = 0; i < 2 * bits; ++i) {
        p |= static_cast<unsigned>(v[nl.outputs()[i]] & 1ull) << i;
      }
      EXPECT_EQ(p, a * b) << a << "*" << b;
    }
  }
}

TEST(Gen, MultiplierPathCountExplodes) {
  // The array multiplier is the c6288-style path-rich circuit.
  EXPECT_GT(count_paths(make_multiplier(8)).total, 100000u);
}

TEST(Gen, SyntheticIsDeterministic) {
  SyntheticOptions opt;
  opt.seed = 7;
  Netlist a = make_synthetic(opt);
  Netlist b = make_synthetic(opt);
  ASSERT_EQ(a.size(), b.size());
  Rng rng(1);
  EXPECT_TRUE(check_equivalent(a, b, rng).equivalent);
}

TEST(Gen, SyntheticMeetsBudgets) {
  SyntheticOptions opt;
  opt.inputs = 12;
  opt.outputs = 8;
  opt.gates = 200;
  Netlist nl = make_synthetic(opt);
  EXPECT_EQ(nl.inputs().size(), 12u);
  EXPECT_GE(nl.outputs().size(), 4u);
  // The budget is approximate: unselected sinks are swept as dead logic.
  EXPECT_GE(nl.gate_count(), 100u);
  EXPECT_TRUE(nl.check().empty()) << nl.check();
  EXPECT_GT(count_paths(nl).total, nl.gate_count());
}

TEST(Gen, SuiteBuildsAllEntries) {
  for (const auto& e : benchmark_suite()) {
    Netlist nl = make_benchmark(e.name);
    EXPECT_TRUE(nl.check().empty()) << e.name << ": " << nl.check();
    EXPECT_FALSE(nl.outputs().empty()) << e.name;
    EXPECT_EQ(nl.name(), e.name);
  }
}

TEST(Gen, UnknownBenchmarkThrows) {
  EXPECT_THROW(make_benchmark("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace compsyn
