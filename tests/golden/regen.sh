#!/bin/sh
# Regenerates the golden expectation files after an INTENDED behaviour
# change. Run from the repository root with a configured tracing build:
#
#   cmake -B build -S . && cmake --build build -j --target golden_flow_test resynth_flow
#   tests/golden/regen.sh [build-dir]
#
# Then review `git diff tests/golden/` and commit the refreshed files
# together with the change that moved them.
set -e
BUILD_DIR="${1:-build}"
GOLDEN_REGEN=1 ctest --test-dir "$BUILD_DIR" -R '^golden_flow_test$' --output-on-failure
git -C "$(dirname "$0")/../.." status --short tests/golden
