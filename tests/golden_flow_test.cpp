// Golden-reference flow tests: resynth_flow runs on committed seed circuits
// (tests/golden/*.bench) and its stdout plus masked --report JSON must match
// the committed expectation files byte for byte. Any behaviour drift in the
// default pipeline -- ordering, counters, substitutions, report layout --
// fails here first, with a diff against a file a human can read.
//
// Regenerating after an INTENDED behaviour change:
//   GOLDEN_REGEN=1 ctest -R golden_flow_test   (or tests/golden/regen.sh)
// then review the diff of tests/golden/ and commit it with the change.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "report_mask.hpp"

namespace compsyn {
namespace {

#ifndef RESYNTH_FLOW_PATH
#error "RESYNTH_FLOW_PATH must be defined by the build"
#endif
#ifndef GOLDEN_DIR
#error "GOLDEN_DIR must be defined by the build"
#endif

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << text;
  ASSERT_TRUE(os.good()) << path;
}

bool regen_mode() { return std::getenv("GOLDEN_REGEN") != nullptr; }

struct RunResult {
  int exit_code = -1;
  std::string out;
};

/// Runs the flow from inside GOLDEN_DIR (so the circuit argument -- and with
/// it the report's "circuit" meta field -- is a stable relative path).
RunResult run_flow(const std::string& args) {
  static int serial = 0;
  const std::string out_path =
      testing::TempDir() + "compsyn_golden_out" + std::to_string(serial++);
  const std::string cmd = "cd " + std::string(GOLDEN_DIR) + " && " +
                          RESYNTH_FLOW_PATH + " " + args + " >" + out_path +
                          " 2>&1";
  const int raw = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  r.out = slurp(out_path);
  std::remove(out_path.c_str());
  return r;
}

/// One golden case: flow flags on a committed circuit, stdout and masked
/// report compared against (or regenerated into) tests/golden/<case>.*.
void check_case(const std::string& name, const std::string& flags,
                const std::string& circuit) {
  const std::string report_path = testing::TempDir() + "compsyn_" + name + ".json";
  const RunResult r =
      run_flow(flags + " --report=" + report_path + " " + circuit);
  ASSERT_EQ(r.exit_code, 0) << r.out;

  std::string err;
  const auto parsed = Json::parse(slurp(report_path), &err);
  std::remove(report_path.c_str());
  ASSERT_TRUE(parsed.has_value()) << err;
  const std::string masked = masked_report_dump(*parsed) + "\n";

  const std::string golden = std::string(GOLDEN_DIR) + "/" + name;
  if (regen_mode()) {
    spit(golden + ".stdout.txt", r.out);
    spit(golden + ".report.masked", masked);
    std::cout << "regenerated " << golden << ".{stdout.txt,report.masked}\n";
    return;
  }
  EXPECT_EQ(r.out, slurp(golden + ".stdout.txt"))
      << "stdout drift for " << name
      << " -- if intended, regenerate with GOLDEN_REGEN=1 and commit";
#if COMPSYN_TRACE
  // The committed reports are recorded by a tracing build; a trace-off build
  // compiles the counter/span surface out, so only stdout is pinned there.
  // Both sides go through label_ordered_spans: the report emits spans in
  // measured-total-time order, which machine load can flip for spans with
  // near-equal totals (the committed bytes are untouched, only the compare
  // is order-insensitive).
  EXPECT_EQ(label_ordered_spans(masked),
            label_ordered_spans(slurp(golden + ".report.masked")))
      << "report drift for " << name
      << " -- if intended, regenerate with GOLDEN_REGEN=1 and commit";
#else
  (void)masked;
#endif
}

TEST(GoldenFlow, Procedure2OnGoldenA) {
  check_case("golden_a.proc2", "--proc=2", "golden_a.bench");
}

TEST(GoldenFlow, Procedure3OnGoldenB) {
  check_case("golden_b.proc3", "--proc=3", "golden_b.bench");
}

TEST(GoldenFlow, Procedure2OnGoldenAJobs4MatchesJobs1Golden) {
  // The identification memo tiers (exact-table and NPN-orbit,
  // core/comparison.cpp) are thread-local and results never depend on memo
  // state, so a --jobs=4 run must print byte-for-byte the stdout committed
  // from the --jobs=1 golden above. This pins the memo-on default across
  // thread counts with no separate golden file to drift.
  if (regen_mode()) GTEST_SKIP() << "reuses the jobs=1 golden; nothing to regen";
  const RunResult r = run_flow("--proc=2 --jobs=4 golden_a.bench");
  ASSERT_EQ(r.exit_code, 0) << r.out;
  EXPECT_EQ(r.out, slurp(std::string(GOLDEN_DIR) + "/golden_a.proc2.stdout.txt"))
      << "--jobs=4 stdout drifted from the committed --jobs=1 golden";
}

}  // namespace
}  // namespace compsyn
