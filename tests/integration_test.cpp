// End-to-end pipeline tests: the full Section 5 flow (irredundant start ->
// Procedure 2/3 -> redundancy removal -> testability measurements) wired
// through every subsystem at once, on real suite circuits.
#include <gtest/gtest.h>

#include <sstream>

#include "atpg/redundancy.hpp"
#include "bench_io/bench_io.hpp"
#include "core/resynth.hpp"
#include "delay/nonenum.hpp"
#include "delay/robust.hpp"
#include "faults/fault_sim.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "paths/paths.hpp"
#include "rar/rar.hpp"
#include "sat/cec.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

class PaperFlow : public ::testing::TestWithParam<const char*> {};

TEST_P(PaperFlow, Procedure2PipelineInvariants) {
  Netlist nl = make_benchmark(GetParam());
  remove_redundancies(nl);
  Netlist original = nl.compacted();
  const std::uint64_t g0 = original.equivalent_gate_count();
  const std::uint64_t p0 = count_paths(original).total;

  ResynthStats st = procedure2(nl, 5);
  remove_redundancies(nl);

  // Function preserved through the whole pipeline -- and PROVEN preserved:
  // Both runs simulation first, then closes the verdict with a SAT proof on
  // circuits too wide for the exhaustive sweep.
  Rng rng(1);
  auto eq = check_equivalent_mode(original, nl, rng, VerifyMode::Both, 128);
  ASSERT_TRUE(eq.equivalent) << GetParam() << ": " << eq.message;
  ASSERT_TRUE(eq.proven) << GetParam() << ": " << eq.message;
  // Procedure 2 invariants.
  EXPECT_LE(nl.equivalent_gate_count(), g0) << GetParam();
  EXPECT_LE(count_paths(nl).total, p0) << GetParam();
  EXPECT_EQ(st.gates_before, g0) << GetParam();
  // Structural health.
  EXPECT_TRUE(nl.check().empty()) << GetParam() << ": " << nl.check();
  // The result round-trips through the .bench format.
  Netlist again = read_bench_string(write_bench_string(nl.compacted()));
  Rng rng2(2);
  const auto eq2 = check_equivalent_mode(nl, again, rng2, VerifyMode::Both, 64);
  EXPECT_TRUE(eq2.equivalent && eq2.proven) << GetParam() << ": " << eq2.message;
}

TEST_P(PaperFlow, Procedure3ReducesPathsAtLeastAsMuch) {
  Netlist base = make_benchmark(GetParam());
  remove_redundancies(base);
  Netlist for2 = base.compacted();
  Netlist for3 = base.compacted();
  procedure2(for2, 5);
  procedure3(for3, 5);
  EXPECT_LE(count_paths(for3).total, count_paths(for2).total) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Suite, PaperFlow,
                         ::testing::Values("c17", "s27", "add8", "cmp8", "alu4",
                                           "syn150"));

TEST(Integration, TestabilityClaimsOnSyn150) {
  // The paper's two headline testability claims, end to end.
  Netlist nl = make_benchmark("syn150");
  remove_redundancies(nl);
  Netlist original = nl.compacted();
  procedure2(nl, 6);
  remove_redundancies(nl);

  // (1) Random-pattern stuck-at testability does not deteriorate.
  Rng r1(99), r2(99);
  const auto saf_orig = random_saf_experiment(original, r1, 1 << 16);
  const auto saf_mod = random_saf_experiment(nl, r2, 1 << 16);
  EXPECT_LE(saf_mod.remaining, saf_orig.remaining);

  // (2) Robust PDF coverage rises: fewer total faults, similar detections.
  Rng r3(7), r4(7);
  const auto pdf_orig = random_robust_pdf(original, r3, 2000, 100000);
  const auto pdf_mod = random_robust_pdf(nl, r4, 2000, 100000);
  EXPECT_LT(pdf_mod.total_faults, pdf_orig.total_faults);
  const double cov_orig = static_cast<double>(pdf_orig.detected) /
                          static_cast<double>(pdf_orig.total_faults);
  const double cov_mod = static_cast<double>(pdf_mod.detected) /
                         static_cast<double>(pdf_mod.total_faults);
  EXPECT_GT(cov_mod, cov_orig);
}

TEST(Integration, BaselinePlusProcedure2Composition) {
  Netlist nl = make_benchmark("syn150");
  remove_redundancies(nl);
  Netlist original = nl.compacted();

  RarOptions ropt;
  ropt.max_adds = 8;
  rar_optimize(nl, ropt);
  Netlist after_rar = nl.compacted();
  procedure2(nl, 5);

  Rng rng(5);
  const auto eq = check_equivalent_mode(original, nl, rng, VerifyMode::Both, 128);
  EXPECT_TRUE(eq.equivalent && eq.proven) << eq.message;
  // Procedure 2 after the baseline cannot increase gates or paths.
  EXPECT_LE(nl.equivalent_gate_count(), after_rar.equivalent_gate_count());
  EXPECT_LE(count_paths(nl).total, count_paths(after_rar).total);
}

TEST(Integration, MappingTracksGateReduction) {
  Netlist nl = make_benchmark("syn300");
  remove_redundancies(nl);
  const TechmapResult before = technology_map(nl);
  procedure2(nl, 6);
  const TechmapResult after = technology_map(nl);
  // Mapped area must move in the same direction as the equivalent-gate
  // count (the Table 4 observation); allow a small tolerance for library
  // granularity.
  EXPECT_LT(after.area, before.area + before.area / 10);
}

TEST(Integration, NonEnumBoundsBracketTable7Simulation) {
  Netlist nl = make_benchmark("cmp8");
  remove_redundancies(nl);
  Rng r1(3), r2(3);
  RobustPdfSimulator sim(nl);
  NonEnumerativePdfEstimator est(nl);
  const std::size_t n = nl.inputs().size();
  std::vector<bool> v1(n), v2(n);
  for (int p = 0; p < 1000; ++p) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t r = r1.next();
      v1[i] = r & 1;
      v2[i] = (r >> 1) & 1;
    }
    sim.apply(v1, v2);
    est.apply(v1, v2);
  }
  EXPECT_LE(est.lower_bound(), sim.detected_count());
  EXPECT_GE(est.upper_bound(), sim.detected_count());
}

TEST(Integration, ScanCircuitFullFlow) {
  // s27 exercises the DFF scan conversion path end to end.
  Netlist nl = make_s27();
  EXPECT_TRUE(is_irredundant(nl));
  Netlist original = nl.compacted();
  ResynthStats st = procedure3(nl, 5);
  EXPECT_LT(st.paths_after, st.paths_before);
  Rng rng(11);
  auto eq = check_equivalent(original, nl, rng);
  EXPECT_TRUE(eq.equivalent) << eq.message;
  EXPECT_TRUE(eq.exhaustive);
  EXPECT_TRUE(eq.proven);
}

}  // namespace
}  // namespace compsyn
