#include <gtest/gtest.h>

#include "core/multi_unit.hpp"
#include "core/resynth.hpp"
#include "netlist/equivalence.hpp"
#include "paths/paths.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

void expect_multi_correct(const MultiUnitSpec& spec, const TruthTable& f) {
  EXPECT_EQ(spec.to_truth_table(), f);
  Netlist nl("mu");
  std::vector<NodeId> leaves;
  for (unsigned v = 0; v < f.num_vars(); ++v) leaves.push_back(nl.add_input());
  UnitBuildResult r = build_multi_unit(nl, spec, leaves);
  nl.mark_output(r.output);
  ASSERT_TRUE(nl.check().empty()) << nl.check();
  for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
    std::vector<std::uint64_t> pi(f.num_vars());
    for (unsigned v = 0; v < f.num_vars(); ++v) {
      pi[v] = ((m >> (f.num_vars() - 1 - v)) & 1u) ? ~0ull : 0;
    }
    ASSERT_EQ((nl.simulate(pi)[r.output] & 1ull) != 0, f.get(m))
        << f.to_bits() << " @ " << m;
  }
}

TEST(MultiUnit, Xor3NeedsThreeUnits) {
  TruthTable x3 = TruthTable::from_bits("01101001");
  auto spec = identify_multi_comparison(x3);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->parts.size(), 3u);  // symmetric: always 3 runs
  expect_multi_correct(*spec, x3);
}

TEST(MultiUnit, ComparisonFunctionIsOneUnit) {
  TruthTable f = TruthTable::from_function(
      4, [](std::uint32_t m) { return m >= 5 && m <= 10; });
  auto spec = identify_multi_comparison(f);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->parts.size(), 1u);
  expect_multi_correct(*spec, f);
}

TEST(MultiUnit, ComplementChosenWhenCheaper) {
  // f = ~(one interval): OFF-set is one run, ON-set is two.
  TruthTable f = TruthTable::from_function(
      3, [](std::uint32_t m) { return !(m >= 3 && m <= 5); });
  auto spec = identify_multi_comparison(f);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->parts.size(), 1u);
  expect_multi_correct(*spec, f);
}

TEST(MultiUnit, ConstantFunctions) {
  TruthTable one = TruthTable::from_function(3, [](std::uint32_t) { return true; });
  auto s1 = identify_multi_comparison(one);
  ASSERT_TRUE(s1.has_value());
  expect_multi_correct(*s1, one);
  TruthTable zero(3);
  auto s0 = identify_multi_comparison(zero);
  ASSERT_TRUE(s0.has_value());
  expect_multi_correct(*s0, zero);
}

TEST(MultiUnit, RandomFunctionsDecompose) {
  Rng rng(77);
  int found = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned n = 3 + trial % 2;
    TruthTable f = TruthTable::from_function(
        n, [&](std::uint32_t) { return rng.flip(); });
    MultiIdentifyOptions opt;
    opt.max_units = 8;  // every 3/4-var function has at most 8 ON runs
    auto spec = identify_multi_comparison(f, opt);
    if (!spec) continue;
    ++found;
    EXPECT_LE(spec->parts.size(), 8u);
    expect_multi_correct(*spec, f);
  }
  EXPECT_GE(found, 190) << "nearly all small functions must decompose";
}

TEST(MultiUnit, CostAccountingMatchesBuild) {
  TruthTable x3 = TruthTable::from_bits("01101001");
  auto spec = identify_multi_comparison(x3);
  ASSERT_TRUE(spec.has_value());
  const UnitCost cost = multi_unit_cost(*spec);
  Netlist nl("c");
  std::vector<NodeId> leaves;
  for (unsigned v = 0; v < 3; ++v) leaves.push_back(nl.add_input());
  UnitBuildResult r = build_multi_unit(nl, *spec, leaves);
  EXPECT_EQ(cost.equiv_gates, r.equiv_gates);
  EXPECT_EQ(cost.kp, r.kp);
  // Path bookkeeping must match Procedure 1 on the built structure.
  nl.mark_output(r.output);
  std::uint64_t kp_sum = 0;
  for (auto k : r.kp) kp_sum += k;
  EXPECT_EQ(count_paths(nl).total, kp_sum);
}

TEST(MultiUnit, ResynthesisExtensionPreservesFunction) {
  // An XOR-heavy circuit: plain Procedure 2 cannot touch XOR3 cones, the
  // multi-unit extension can.
  Netlist nl("xh");
  std::vector<NodeId> x;
  for (int i = 0; i < 6; ++i) x.push_back(nl.add_input());
  NodeId a = nl.add_gate(GateType::Xor, {x[0], x[1], x[2]});
  NodeId b = nl.add_gate(GateType::Xor, {x[3], x[4], x[5]});
  NodeId c = nl.add_gate(GateType::And, {a, b});
  nl.mark_output(c);
  Netlist ref = nl.compacted();
  ResynthOptions opt;
  opt.objective = ResynthObjective::Paths;
  opt.allow_gate_increase = true;
  opt.max_units = 4;
  resynthesize(nl, opt);
  Rng rng(3);
  auto res = check_equivalent(nl, ref, rng);
  EXPECT_TRUE(res.equivalent) << res.message;
  EXPECT_TRUE(res.exhaustive);
}

}  // namespace
}  // namespace compsyn
