#include <gtest/gtest.h>

#include "netlist/equivalence.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// A 1-bit full adder (sum, carry) used by several tests.
Netlist full_adder() {
  Netlist nl("fa");
  NodeId a = nl.add_input("a");
  NodeId b = nl.add_input("b");
  NodeId cin = nl.add_input("cin");
  NodeId axb = nl.add_gate(GateType::Xor, {a, b});
  NodeId sum = nl.add_gate(GateType::Xor, {axb, cin});
  NodeId ab = nl.add_gate(GateType::And, {a, b});
  NodeId c2 = nl.add_gate(GateType::And, {axb, cin});
  NodeId cout = nl.add_gate(GateType::Or, {ab, c2});
  nl.mark_output(sum);
  nl.mark_output(cout);
  return nl;
}

TEST(GateEval, TruthTablesOfAllTypes) {
  const std::vector<std::uint64_t> in01 = {0x5ull, 0x3ull};  // bits: a=1010.., b=1100..
  EXPECT_EQ(eval_gate(GateType::And, in01) & 0xF, 0x1ull);
  EXPECT_EQ(eval_gate(GateType::Nand, in01) & 0xF, 0xEull);
  EXPECT_EQ(eval_gate(GateType::Or, in01) & 0xF, 0x7ull);
  EXPECT_EQ(eval_gate(GateType::Nor, in01) & 0xF, 0x8ull);
  EXPECT_EQ(eval_gate(GateType::Xor, in01) & 0xF, 0x6ull);
  EXPECT_EQ(eval_gate(GateType::Xnor, in01) & 0xF, 0x9ull);
  EXPECT_EQ(eval_gate(GateType::Not, {0x5ull}) & 0xF, 0xAull);
  EXPECT_EQ(eval_gate(GateType::Buf, {0x5ull}) & 0xF, 0x5ull);
  EXPECT_EQ(eval_gate(GateType::Const0, {}) & 0xF, 0x0ull);
  EXPECT_EQ(eval_gate(GateType::Const1, {}) & 0xF, 0xFull);
}

TEST(GateProps, ControllingValues) {
  EXPECT_TRUE(has_controlling_value(GateType::And));
  EXPECT_TRUE(has_controlling_value(GateType::Nor));
  EXPECT_FALSE(has_controlling_value(GateType::Xor));
  EXPECT_FALSE(has_controlling_value(GateType::Not));
  EXPECT_FALSE(controlling_value(GateType::And));
  EXPECT_FALSE(controlling_value(GateType::Nand));
  EXPECT_TRUE(controlling_value(GateType::Or));
  EXPECT_TRUE(controlling_value(GateType::Nor));
  // Controlled outputs: AND->0, NAND->1, OR->1, NOR->0.
  EXPECT_FALSE(controlled_output(GateType::And));
  EXPECT_TRUE(controlled_output(GateType::Nand));
  EXPECT_TRUE(controlled_output(GateType::Or));
  EXPECT_FALSE(controlled_output(GateType::Nor));
}

TEST(Netlist, BuildAndSimulateFullAdder) {
  Netlist nl = full_adder();
  EXPECT_EQ(nl.inputs().size(), 3u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_TRUE(nl.check().empty()) << nl.check();

  // Exhaustive: 8 patterns in one word.
  std::vector<std::uint64_t> pi = {exhaustive_mask(0), exhaustive_mask(1),
                                   exhaustive_mask(2)};
  auto v = nl.simulate(pi);
  for (unsigned p = 0; p < 8; ++p) {
    const unsigned a = p & 1, b = (p >> 1) & 1, c = (p >> 2) & 1;
    const unsigned sum = (v[nl.outputs()[0]] >> p) & 1;
    const unsigned cout = (v[nl.outputs()[1]] >> p) & 1;
    EXPECT_EQ(sum, (a + b + c) & 1u) << "pattern " << p;
    EXPECT_EQ(cout, (a + b + c) >> 1) << "pattern " << p;
  }
}

TEST(Netlist, EquivalentGateCountPerPaper) {
  Netlist nl("g");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId c = nl.add_input();
  NodeId d = nl.add_input();
  NodeId g1 = nl.add_gate(GateType::And, {a, b, c, d});  // 4-input -> 3
  NodeId g2 = nl.add_gate(GateType::Not, {g1});          // inverter -> 0
  NodeId g3 = nl.add_gate(GateType::Or, {g2, a});        // 2-input -> 1
  nl.mark_output(g3);
  EXPECT_EQ(nl.equivalent_gate_count(), 4u);
  EXPECT_EQ(nl.gate_count(), 3u);
}

TEST(Netlist, DepthCountsBufAndNot) {
  Netlist nl("d");
  NodeId a = nl.add_input();
  NodeId n1 = nl.add_gate(GateType::Not, {a});
  NodeId n2 = nl.add_gate(GateType::Buf, {n1});
  NodeId n3 = nl.add_gate(GateType::And, {n2, a});
  nl.mark_output(n3);
  EXPECT_EQ(nl.depth(), 3u);
}

TEST(Netlist, SweepMarksUnreachableDead) {
  Netlist nl("s");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId used = nl.add_gate(GateType::And, {a, b});
  NodeId dead1 = nl.add_gate(GateType::Or, {a, b});
  NodeId dead2 = nl.add_gate(GateType::Not, {dead1});
  nl.mark_output(used);
  EXPECT_EQ(nl.sweep(), 2u);
  EXPECT_TRUE(nl.is_dead(dead1));
  EXPECT_TRUE(nl.is_dead(dead2));
  EXPECT_FALSE(nl.is_dead(a));
  EXPECT_FALSE(nl.is_dead(used));
  EXPECT_EQ(nl.live_count(), 3u);
  EXPECT_TRUE(nl.check().empty()) << nl.check();
}

TEST(Netlist, RedefineKeepsFanoutsAndOutputs) {
  Netlist nl("r");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, b});
  NodeId h = nl.add_gate(GateType::Not, {g});
  nl.mark_output(g);
  nl.mark_output(h);
  nl.redefine(g, GateType::Or, {a, b});
  EXPECT_EQ(nl.node(g).type, GateType::Or);
  EXPECT_TRUE(nl.node(g).is_output);
  EXPECT_EQ(nl.node(h).fanins[0], g);
  auto v = nl.simulate({0b01ull, 0b10ull});  // a=1,0 ; b=0,1
  EXPECT_EQ(v[g] & 3ull, 3ull);
}

struct ConstFoldCase {
  GateType type;
  bool const_val;        // the constant fed to the gate
  bool other_is_var;     // second input is a variable
  GateType expect_type;  // expected node type after simplify
};

class SimplifyConstFold : public ::testing::TestWithParam<ConstFoldCase> {};

TEST_P(SimplifyConstFold, FoldsCorrectly) {
  const auto& c = GetParam();
  Netlist nl("cf");
  NodeId a = nl.add_input();
  NodeId k = nl.add_const(c.const_val);
  NodeId g = nl.add_gate(c.type, {a, k});
  nl.mark_output(g);
  nl.simplify();
  EXPECT_EQ(nl.node(g).type, c.expect_type)
      << to_string(c.type) << " with const " << c.const_val << " got "
      << to_string(nl.node(g).type);
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, SimplifyConstFold,
    ::testing::Values(
        // controlling constants
        ConstFoldCase{GateType::And, false, true, GateType::Const0},
        ConstFoldCase{GateType::Nand, false, true, GateType::Const1},
        ConstFoldCase{GateType::Or, true, true, GateType::Const1},
        ConstFoldCase{GateType::Nor, true, true, GateType::Const0},
        // non-controlling constants reduce to Buf/Not of the variable
        ConstFoldCase{GateType::And, true, true, GateType::Buf},
        ConstFoldCase{GateType::Nand, true, true, GateType::Not},
        ConstFoldCase{GateType::Or, false, true, GateType::Buf},
        ConstFoldCase{GateType::Nor, false, true, GateType::Not},
        ConstFoldCase{GateType::Xor, false, true, GateType::Buf},
        ConstFoldCase{GateType::Xor, true, true, GateType::Not},
        ConstFoldCase{GateType::Xnor, true, true, GateType::Buf},
        ConstFoldCase{GateType::Xnor, false, true, GateType::Not}));

TEST(Simplify, PreservesFunction) {
  Netlist nl("sp");
  NodeId a = nl.add_input("a");
  NodeId b = nl.add_input("b");
  NodeId c = nl.add_input("c");
  NodeId k1 = nl.add_const(true);
  NodeId k0 = nl.add_const(false);
  NodeId t1 = nl.add_gate(GateType::And, {a, k1});       // = a
  NodeId t2 = nl.add_gate(GateType::Or, {t1, k0});       // = a
  NodeId t3 = nl.add_gate(GateType::Buf, {t2});          // = a
  NodeId t4 = nl.add_gate(GateType::Xor, {t3, b, k0});   // = a^b
  NodeId t5 = nl.add_gate(GateType::Nand, {t4, c, k1});  // = ~((a^b)c)
  nl.mark_output(t5);
  Netlist ref = nl.compacted();
  nl.simplify();
  Rng rng(5);
  auto res = check_equivalent(nl, ref, rng);
  EXPECT_TRUE(res.equivalent) << res.message;
  EXPECT_TRUE(res.exhaustive);
  // After simplification: one XOR and one NAND survive.
  EXPECT_LE(nl.gate_count(), 2u);
}

TEST(Simplify, BufferChainsBypassed) {
  Netlist nl("bc");
  NodeId a = nl.add_input();
  NodeId b1 = nl.add_gate(GateType::Buf, {a});
  NodeId b2 = nl.add_gate(GateType::Buf, {b1});
  NodeId b3 = nl.add_gate(GateType::Buf, {b2});
  NodeId g = nl.add_gate(GateType::And, {b3, a});
  nl.mark_output(g);
  nl.simplify();
  // g's surviving fanins all point directly at a.
  for (NodeId f : nl.node(g).fanins) EXPECT_EQ(f, a);
}

TEST(Simplify, OutputBufferKept) {
  Netlist nl("ob");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, b});
  NodeId buf = nl.add_gate(GateType::Buf, {g}, "po_buf");
  nl.mark_output(buf);
  nl.simplify();
  EXPECT_FALSE(nl.is_dead(buf));
  EXPECT_EQ(nl.outputs()[0], buf);
}

TEST(Netlist, CompactedPreservesFunctionAndInterface) {
  Netlist nl = full_adder();
  // Create garbage then compact.
  NodeId junk = nl.add_gate(GateType::And, {nl.inputs()[0], nl.inputs()[1]});
  (void)junk;
  nl.sweep();
  std::vector<NodeId> map;
  Netlist c = nl.compacted(&map);
  EXPECT_EQ(c.size(), nl.live_count());
  EXPECT_EQ(c.inputs().size(), 3u);
  EXPECT_EQ(c.outputs().size(), 2u);
  Rng rng(1);
  auto res = check_equivalent(nl, c, rng);
  EXPECT_TRUE(res.equivalent) << res.message;
  EXPECT_TRUE(res.exhaustive);
}

TEST(Equivalence, DetectsDifferenceWithCounterexample) {
  Netlist a("a"), b("b");
  NodeId ax = a.add_input(), ay = a.add_input();
  a.mark_output(a.add_gate(GateType::And, {ax, ay}));
  NodeId bx = b.add_input(), by = b.add_input();
  b.mark_output(b.add_gate(GateType::Or, {bx, by}));
  Rng rng(2);
  auto res = check_equivalent(a, b, rng);
  EXPECT_FALSE(res.equivalent);
  ASSERT_EQ(res.counterexample.size(), 2u);
  // The counterexample must actually distinguish AND from OR.
  const bool va = res.counterexample[0] && res.counterexample[1];
  const bool vb = res.counterexample[0] || res.counterexample[1];
  EXPECT_NE(va, vb);
}

TEST(Equivalence, InterfaceMismatchRejected) {
  Netlist a("a"), b("b");
  a.mark_output(a.add_input());
  b.add_input();
  b.mark_output(b.add_gate(GateType::Not, {b.add_input()}));
  Rng rng(3);
  EXPECT_FALSE(check_equivalent(a, b, rng).equivalent);
}

TEST(Equivalence, LargeInputCountUsesRandom) {
  Netlist a("a"), b("b");
  std::vector<NodeId> ai, bi;
  for (int i = 0; i < 30; ++i) {
    ai.push_back(a.add_input());
    bi.push_back(b.add_input());
  }
  a.mark_output(a.add_gate(GateType::And, ai));
  b.mark_output(b.add_gate(GateType::And, bi));
  Rng rng(4);
  auto res = check_equivalent(a, b, rng, /*random_words=*/16);
  EXPECT_TRUE(res.equivalent);
  EXPECT_FALSE(res.exhaustive);
}

TEST(Netlist, CheckFlagsArityViolations) {
  Netlist nl("bad");
  NodeId a = nl.add_input();
  NodeId g = nl.add_gate(GateType::Not, {a});
  nl.mark_output(g);
  EXPECT_TRUE(nl.check().empty());
  nl.redefine(g, GateType::And, {a});  // 1-input AND: arity violation
  EXPECT_FALSE(nl.check().empty());
}

}  // namespace
}  // namespace compsyn
