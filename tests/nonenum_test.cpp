#include <gtest/gtest.h>

#include "delay/nonenum.hpp"
#include "delay/robust.hpp"
#include "gen/circuits.hpp"
#include "paths/paths.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

Netlist small_circuit() {
  Netlist nl("s");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId c = nl.add_input();
  NodeId nb = nl.add_gate(GateType::Not, {b});
  NodeId g1 = nl.add_gate(GateType::And, {a, nb});
  NodeId g2 = nl.add_gate(GateType::Or, {g1, c});
  NodeId g3 = nl.add_gate(GateType::Nand, {g1, b});
  nl.mark_output(g2);
  nl.mark_output(g3);
  return nl;
}

TEST(NonEnum, TotalFaultsMatchesExactWhenSmall) {
  Netlist nl = small_circuit();
  NonEnumerativePdfEstimator est(nl);
  EXPECT_EQ(est.total_faults(), 2 * count_paths(nl).total);
}

TEST(NonEnum, PerPairLowerBoundIsExactSinglePairCount) {
  Netlist nl = small_circuit();
  Rng rng(5);
  const std::size_t n = nl.inputs().size();
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<bool> v1(n), v2(n);
    for (std::size_t i = 0; i < n; ++i) {
      v1[i] = rng.flip();
      v2[i] = rng.flip();
    }
    NonEnumerativePdfEstimator est(nl);
    est.apply(v1, v2);
    RobustPdfSimulator sim(nl);
    const std::uint64_t exact = sim.apply(v1, v2);
    EXPECT_EQ(est.lower_bound(), exact) << "trial " << trial;
    // A single pair's upper bound must also contain the exact set.
    EXPECT_GE(est.upper_bound(), exact);
  }
}

TEST(NonEnum, BoundsBracketExactUnionOverManyPairs) {
  for (const char* name : {"c17", "s27", "cmp8"}) {
    Netlist nl = make_benchmark(name);
    Rng r1(9), r2(9);
    NonEnumerativePdfEstimator est(nl);
    RobustPdfSimulator sim(nl);
    const std::size_t n = nl.inputs().size();
    std::vector<bool> v1(n), v2(n);
    for (int pair = 0; pair < 400; ++pair) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t r = r1.next();
        v1[i] = r & 1;
        v2[i] = (r >> 1) & 1;
      }
      est.apply(v1, v2);
      sim.apply(v1, v2);
      ASSERT_LE(est.lower_bound(), sim.detected_count()) << name << " @ " << pair;
      ASSERT_GE(est.upper_bound(), sim.detected_count()) << name << " @ " << pair;
    }
    EXPECT_LE(est.upper_bound(), est.total_faults());
  }
}

TEST(NonEnum, LowerBoundMonotone) {
  Netlist nl = make_benchmark("cmp8");
  Rng rng(11);
  NonEnumerativePdfEstimator est(nl);
  const std::size_t n = nl.inputs().size();
  std::vector<bool> v1(n), v2(n);
  std::uint64_t prev = 0;
  for (int pair = 0; pair < 200; ++pair) {
    for (std::size_t i = 0; i < n; ++i) {
      v1[i] = rng.flip();
      v2[i] = rng.flip();
    }
    est.apply(v1, v2);
    EXPECT_GE(est.lower_bound(), prev);
    prev = est.lower_bound();
  }
}

TEST(NonEnum, HandlesHugePathCountsWithoutOverflow) {
  // A 14x14 multiplier's path count is astronomically large; the estimator
  // must saturate rather than overflow (count_paths would throw).
  Netlist nl = make_multiplier(14);
  NonEnumerativePdfEstimator est(nl);
  EXPECT_GT(est.total_faults(), 1ull << 32);
  Rng rng(3);
  const std::size_t n = nl.inputs().size();
  std::vector<bool> v1(n), v2(n);
  for (int pair = 0; pair < 10; ++pair) {
    for (std::size_t i = 0; i < n; ++i) {
      v1[i] = rng.flip();
      v2[i] = rng.flip();
    }
    est.apply(v1, v2);
  }
  EXPECT_LE(est.lower_bound(), est.upper_bound());
  EXPECT_LE(est.upper_bound(), est.total_faults());
}

TEST(NonEnum, DriverReportsConsistentBounds) {
  Netlist nl = make_benchmark("alu4");
  Rng rng(13);
  auto res = random_nonenum_pdf(nl, rng, 500);
  EXPECT_EQ(res.pairs_applied, 500u);
  EXPECT_LE(res.lower, res.upper);
  EXPECT_LE(res.upper, res.total_faults);
  EXPECT_GT(res.lower, 0u);
}

}  // namespace
}  // namespace compsyn
