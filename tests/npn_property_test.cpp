// Exhaustive property tests for the NPN canonicalization pass
// (core/signature.hpp) and for the soundness boundary of the NPN-orbit
// identification memo (core/comparison.cpp).
//
// At n <= 3 every one of the 2^(2^n) functions is checked against a
// brute-force orbit oracle that enumerates the whole transform group
// per-bit, independently of the kernels under test:
//   * canonical(f) == canonical(g)  iff  f and g share an orbit, and
//   * transform.apply(f) reproduces the canonical table exactly.
// n = 4 gets a seeded random sample through the same machinery.
//
// The memo-soundness tests pin the algebra the orbit cache relies on:
// comparison-function membership is invariant under input permutations and
// output complement (the kPermOutput group), and provably NOT under input
// negations -- including the concrete 3-variable counterexample that rules
// full-NPN result sharing out (DESIGN.md sect. 14).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "core/comparison.hpp"
#include "core/signature.hpp"
#include "core/truth_table.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// Oracle transform application: per-bit, no TruthTable kernels involved.
/// Mirrors NpnTransform semantics: complement output, flip the inputs in
/// `mask` (bit v = original variable v), then permute (position j holds
/// original variable perm[j]).
TruthTable oracle_apply(const TruthTable& f, const std::vector<unsigned>& perm,
                        std::uint32_t mask, bool output_neg) {
  const unsigned n = f.num_vars();
  std::uint32_t mask_minterm = 0;
  for (unsigned v = 0; v < n; ++v) {
    if ((mask >> v) & 1u) mask_minterm |= 1u << (n - 1 - v);
  }
  return TruthTable::from_function(n, [&](std::uint32_t m) {
    std::uint32_t orig = 0;
    for (unsigned j = 0; j < n; ++j) {
      const std::uint32_t bit = (m >> (n - 1 - j)) & 1u;
      orig |= bit << (n - 1 - perm[j]);
    }
    return f.get(orig ^ mask_minterm) != output_neg;
  });
}

/// The input-negation masks the chosen group allows.
std::vector<std::uint32_t> group_masks(unsigned n, NpnGroup group) {
  if (group == NpnGroup::kFull) {
    std::vector<std::uint32_t> all(1u << n);
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }
  if (group == NpnGroup::kPermOutputReflect && n > 0) {
    return {0u, (1u << n) - 1u};
  }
  return {0u};
}

/// All orbit members of f under the chosen group, as bit strings.
std::set<std::string> oracle_orbit(const TruthTable& f, NpnGroup group) {
  const unsigned n = f.num_vars();
  std::set<std::string> orbit;
  std::vector<unsigned> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  const auto masks = group_masks(n, group);
  do {
    for (std::uint32_t mask : masks) {
      for (int o = 0; o < 2; ++o) {
        orbit.insert(oracle_apply(f, perm, mask, o != 0).to_bits());
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return orbit;
}

TruthTable table_from_value(unsigned n, std::uint32_t bits) {
  TruthTable f(n);
  for (std::uint32_t m = 0; m < f.num_minterms(); ++m) f.set(m, (bits >> m) & 1u);
  return f;
}

/// Canonicalization is exact on the whole function space at this arity:
/// every orbit maps to one representative, the representative is a member
/// of the orbit, and the returned transform reproduces it.
void check_all_functions(unsigned n, NpnGroup group) {
  const std::uint32_t num_functions = 1u << (1u << n);
  std::set<std::string> done;  // orbit members already covered
  std::set<std::string> canonicals_seen;
  for (std::uint32_t bits = 0; bits < num_functions; ++bits) {
    const TruthTable f = table_from_value(n, bits);
    if (done.count(f.to_bits())) continue;

    const NpnCanonical canon = npn_canonicalize(f, group);
    ASSERT_EQ(canon.transform.apply(f), canon.table)
        << "transform must reproduce the canonical table for " << f.to_bits();

    const std::set<std::string> orbit = oracle_orbit(f, group);
    ASSERT_TRUE(orbit.count(canon.table.to_bits()))
        << "canonical table must be an orbit member of " << f.to_bits();
    // Distinct orbits are disjoint member sets, so checking that every
    // member canonicalizes to the same (member) table gives the full
    // "canonical equal iff orbit equal" property across the sweep.
    ASSERT_FALSE(canonicals_seen.count(canon.table.to_bits()))
        << "two distinct orbits share canonical " << canon.table.to_bits();
    canonicals_seen.insert(canon.table.to_bits());
    for (const std::string& member_bits : orbit) {
      const TruthTable g = TruthTable::from_bits(member_bits);
      const NpnCanonical member_canon = npn_canonicalize(g, group);
      ASSERT_EQ(member_canon.table, canon.table)
          << "orbit member " << member_bits << " of " << f.to_bits()
          << " canonicalized differently";
      ASSERT_EQ(member_canon.transform.apply(g), member_canon.table);
      done.insert(member_bits);
    }
  }
}

TEST(NpnCanonical, ExhaustiveFullGroupUpTo3Vars) {
  for (unsigned n = 0; n <= 3; ++n) check_all_functions(n, NpnGroup::kFull);
}

TEST(NpnCanonical, ExhaustivePermOutputGroupUpTo3Vars) {
  for (unsigned n = 0; n <= 3; ++n) check_all_functions(n, NpnGroup::kPermOutput);
}

TEST(NpnCanonical, ExhaustivePermOutputReflectGroupUpTo3Vars) {
  for (unsigned n = 0; n <= 3; ++n) {
    check_all_functions(n, NpnGroup::kPermOutputReflect);
  }
}

TEST(NpnCanonical, SeededSample4Vars) {
  Rng rng(0x4E504E34u);  // "NPN4"
  for (unsigned iter = 0; iter < 60; ++iter) {
    TruthTable f(4);
    const std::uint64_t bits = rng.next();
    for (std::uint32_t m = 0; m < 16; ++m) f.set(m, (bits >> m) & 1u);
    for (const NpnGroup group : {NpnGroup::kFull, NpnGroup::kPermOutputReflect,
                                 NpnGroup::kPermOutput}) {
      const NpnCanonical canon = npn_canonicalize(f, group);
      ASSERT_EQ(canon.transform.apply(f), canon.table);
      // A handful of random orbit members must land on the same canonical.
      for (unsigned t = 0; t < 8; ++t) {
        const auto p32 = rng.permutation(4);
        const std::vector<unsigned> perm(p32.begin(), p32.end());
        const std::uint32_t mask =
            group == NpnGroup::kFull
                ? static_cast<std::uint32_t>(rng.next() & 15u)
                : group == NpnGroup::kPermOutputReflect && rng.flip() ? 15u
                                                                      : 0u;
        const bool o = rng.flip();
        const TruthTable g = oracle_apply(f, perm, mask, o);
        const NpnCanonical gc = npn_canonicalize(g, group);
        ASSERT_EQ(gc.table, canon.table)
            << "member of " << f.to_bits() << " canonicalized differently";
        ASSERT_EQ(gc.transform.apply(g), gc.table);
      }
    }
  }
}

TEST(NpnCanonical, PlainChangesScheduleVisitsAllPermutations) {
  for (unsigned n = 1; n <= 5; ++n) {
    std::vector<unsigned> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    std::set<std::vector<unsigned>> seen{perm};
    for (unsigned p : plain_changes_schedule(n)) {
      ASSERT_LT(p + 1, n);
      std::swap(perm[p], perm[p + 1]);
      ASSERT_TRUE(seen.insert(perm).second) << "permutation revisited";
    }
    std::uint64_t fact = 1;
    for (unsigned i = 2; i <= n; ++i) fact *= i;
    EXPECT_EQ(seen.size(), fact);
  }
}

/// Whether f is a comparison function when the complement is also allowed
/// (the orbit-level property the identification memo shares).
bool in_comparison_class(const TruthTable& f) {
  return !identify_comparison(f, IdentifyOptions{}).empty();
}

TEST(NpnMemoSoundness, ComparisonClassInvariantUnderPermOutputReflectGroup) {
  // The invariance that justifies sharing negative identification results
  // across the memo's orbits: membership is constant on each orbit of
  // permutations x output complement x whole-input reflection. (The
  // reflection negates every input at once, mapping value v to 2^n-1-v
  // under any order -- intervals map to intervals, so membership holds.)
  for (unsigned n = 1; n <= 3; ++n) {
    const std::uint32_t num_functions = 1u << (1u << n);
    for (std::uint32_t bits = 0; bits < num_functions; ++bits) {
      const TruthTable f = table_from_value(n, bits);
      const bool member = in_comparison_class(f);
      for (const std::string& g_bits :
           oracle_orbit(f, NpnGroup::kPermOutputReflect)) {
        EXPECT_EQ(in_comparison_class(TruthTable::from_bits(g_bits)), member)
            << f.to_bits() << " vs orbit member " << g_bits;
      }
    }
  }
}

bool specs_equal(const std::vector<ComparisonSpec>& a,
                 const std::vector<ComparisonSpec>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].n != b[i].n || a[i].perm != b[i].perm ||
        a[i].lower != b[i].lower || a[i].upper != b[i].upper ||
        a[i].complemented != b[i].complemented) {
      return false;
    }
  }
  return true;
}

std::string specs_string(const std::vector<ComparisonSpec>& specs) {
  std::string s;
  for (const auto& spec : specs) {
    s += spec.complemented ? "~(" : "(";
    for (unsigned v : spec.perm) s += std::to_string(v) + " ";
    s += "[" + std::to_string(spec.lower) + "," + std::to_string(spec.upper) +
         "]) ";
  }
  return s;
}

/// The memo's byte-exactness contract, checked member by member: querying
/// any orbit member g AFTER its orbit entry exists (planted by querying f)
/// must return exactly the vector a fresh memo-off search on g returns --
/// same specs, same order -- whether the tier derived it or fell back.
void check_orbit_derivation(const TruthTable& f,
                            const std::set<std::string>& orbit) {
  IdentifyOptions memo_on;
  IdentifyOptions memo_off;
  memo_off.npn_memo = false;
  for (const std::string& g_bits : orbit) {
    const TruthTable g = TruthTable::from_bits(g_bits);
    clear_exact_identification_memo();
    const auto fresh = identify_comparison(g, memo_off);
    clear_exact_identification_memo();
    identify_comparison(f, memo_on);  // plants the orbit entry
    const auto derived = identify_comparison(g, memo_on);
    ASSERT_TRUE(specs_equal(derived, fresh))
        << "member " << g_bits << " of planted " << f.to_bits()
        << "\n  fresh:   " << specs_string(fresh)
        << "\n  derived: " << specs_string(derived);
  }
}

TEST(NpnMemoSoundness, DerivedSpecsMatchFreshSearchExhaustive3Vars) {
  // Exhaustive n <= 3: every function f plants an orbit entry, then every
  // member of f's memo-group orbit is asserted byte-identical to a fresh
  // search. This is the direct test of the derive_orbit_specs reasoning
  // (lex emission order, relabel-isomorphic DFS, half swap, reflection).
  const NpnIdentifyStats before = npn_identify_stats();
  for (unsigned n = 1; n <= 3; ++n) {
    const std::uint32_t num_functions = 1u << (1u << n);
    std::set<std::string> done;
    for (std::uint32_t bits = 0; bits < num_functions; ++bits) {
      const TruthTable f = table_from_value(n, bits);
      if (f.is_const_zero() || f.is_const_one()) continue;  // no-search path
      if (!done.insert(f.to_bits()).second) continue;
      const auto orbit = oracle_orbit(f, NpnGroup::kPermOutputReflect);
      check_orbit_derivation(f, orbit);
      done.insert(orbit.begin(), orbit.end());
    }
  }
  clear_exact_identification_memo();
  const NpnIdentifyStats after = npn_identify_stats();
  // The sweep must actually exercise the derivation path, not just fall
  // back to fresh searches everywhere.
  EXPECT_GT(after.transform_reuses, before.transform_reuses + 100);
}

TEST(NpnMemoSoundness, DerivedSpecsMatchFreshSearchSampled4Vars) {
  Rng rng(0x4E504E35u);
  for (unsigned iter = 0; iter < 25; ++iter) {
    TruthTable f(4);
    const std::uint64_t bits = rng.next();
    for (std::uint32_t m = 0; m < 16; ++m) f.set(m, (bits >> m) & 1u);
    if (f.is_const_zero() || f.is_const_one()) continue;
    // A random slice of the orbit (full orbits have up to 96 members).
    std::set<std::string> members;
    for (unsigned t = 0; t < 10; ++t) {
      const auto p32 = rng.permutation(4);
      const std::vector<unsigned> perm(p32.begin(), p32.end());
      const std::uint32_t mask = rng.flip() ? 15u : 0u;
      members.insert(oracle_apply(f, perm, mask, rng.flip()).to_bits());
    }
    check_orbit_derivation(f, members);
  }
  clear_exact_identification_memo();
}

TEST(NpnMemoSoundness, ComparisonClassNotClosedUnderInputNegation) {
  // The documented counterexample: f has ON-set {1, 2} (an interval), but
  // negating variable 1 yields ON-set {0, 3}, which no permutation or
  // output complement makes contiguous. Full-NPN sharing of identification
  // results would therefore return wrong answers; the memo's orbit group
  // must exclude input negations.
  const TruthTable f = TruthTable::from_bits("01100000");
  ASSERT_TRUE(in_comparison_class(f));
  const TruthTable g = f.flip_input(1);
  EXPECT_EQ(g.to_bits(), "10010000");
  EXPECT_FALSE(in_comparison_class(g));
}

}  // namespace
}  // namespace compsyn
