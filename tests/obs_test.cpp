#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/resynth.hpp"
#include "gen/circuits.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "paths/paths.hpp"
#include "util/table.hpp"

namespace compsyn {
namespace {

#if COMPSYN_TRACE

/// Serialises the obs tests that touch the global registries and makes sure
/// each starts from a clean, enabled state.
class ObsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    obs_set_enabled(true);
    Trace::reset();
    Counters::reset();
  }
  void TearDown() override {
    obs_set_enabled(false);
    Trace::reset();
    Counters::reset();
  }
};

using TraceTest = ObsFixture;
using CountersTest = ObsFixture;
using ReportTest = ObsFixture;

void spin_for(std::chrono::microseconds d) {
  const auto end = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < end) {
  }
}

TEST_F(TraceTest, RecordsCountAndDuration) {
  for (int i = 0; i < 3; ++i) {
    auto s = Trace::span("unit.work");
    spin_for(std::chrono::microseconds(200));
  }
  const auto snap = Trace::snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].label, "unit.work");
  EXPECT_EQ(snap[0].count, 3u);
  EXPECT_GE(snap[0].total_ns, 3u * 200'000u);
  EXPECT_GE(snap[0].min_ns, 200'000u);
  EXPECT_LE(snap[0].min_ns, snap[0].max_ns);
  EXPECT_LE(snap[0].max_ns, snap[0].total_ns);
}

TEST_F(TraceTest, SelfTimeExcludesNestedChildren) {
  {
    auto outer = Trace::span("outer");
    spin_for(std::chrono::microseconds(300));
    {
      auto inner = Trace::span("inner");
      spin_for(std::chrono::microseconds(300));
    }
    spin_for(std::chrono::microseconds(300));
  }
  const auto snap = Trace::snapshot();
  ASSERT_EQ(snap.size(), 2u);
  const SpanStats& outer = snap[0].label == "outer" ? snap[0] : snap[1];
  const SpanStats& inner = snap[0].label == "inner" ? snap[0] : snap[1];
  ASSERT_EQ(outer.label, "outer");
  ASSERT_EQ(inner.label, "inner");
  // The parent's child time is exactly the child's total: the invariant is
  // exact by construction, not approximate.
  EXPECT_EQ(outer.self_ns + inner.total_ns, outer.total_ns);
  EXPECT_GE(outer.self_ns, 2u * 300'000u);
  // Leaf spans have self == total.
  EXPECT_EQ(inner.self_ns, inner.total_ns);
}

TEST_F(TraceTest, SameLabelNestsCorrectly) {
  {
    auto a = Trace::span("rec");
    {
      auto b = Trace::span("rec");
      spin_for(std::chrono::microseconds(200));
    }
  }
  const auto snap = Trace::snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 2u);
  // Self time counts the inner call's body exactly once, so self <= total
  // strictly when nesting occurred.
  EXPECT_LT(snap[0].self_ns, snap[0].total_ns);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  obs_set_enabled(false);
  {
    auto s = Trace::span("ghost");
    spin_for(std::chrono::microseconds(50));
  }
  EXPECT_TRUE(Trace::snapshot().empty());
}

TEST_F(CountersTest, IncrAndValue) {
  Counters::incr("a.b");
  Counters::incr("a.b", 41);
  Counters::incr("other");
  EXPECT_EQ(Counters::value("a.b"), 42u);
  EXPECT_EQ(Counters::value("other"), 1u);
  EXPECT_EQ(Counters::value("never"), 0u);
  const auto all = Counters::counters();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "a.b");  // sorted by name
  EXPECT_EQ(all[1].name, "other");
}

TEST_F(CountersTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) Counters::incr("mt.total");
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(Counters::value("mt.total"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(CountersTest, DistributionsSummarise) {
  Counters::observe("d", 3.0);
  Counters::observe("d", -1.0);
  Counters::observe("d", 10.0);
  const auto dists = Counters::distributions();
  ASSERT_EQ(dists.size(), 1u);
  EXPECT_EQ(dists[0].count, 3u);
  EXPECT_DOUBLE_EQ(dists[0].sum, 12.0);
  EXPECT_DOUBLE_EQ(dists[0].min, -1.0);
  EXPECT_DOUBLE_EQ(dists[0].max, 10.0);
}

TEST_F(CountersTest, DisabledIncrIsNoOp) {
  obs_set_enabled(false);
  Counters::incr("dark");
  EXPECT_EQ(Counters::value("dark"), 0u);
}

TEST(Json, BuildsAndDumpsStably) {
  Json doc = Json::object();
  doc.set("name", "demo");
  doc.set("count", std::uint64_t{42});
  doc.set("offset", std::int64_t{-7});
  doc.set("ok", true);
  doc.set("nothing", Json());
  Json arr = Json::array();
  arr.push(1);
  arr.push(2.5);
  arr.push("x\"y\n");
  doc.set("items", std::move(arr));
  EXPECT_EQ(doc.dump(),
            "{\"name\":\"demo\",\"count\":42,\"offset\":-7,\"ok\":true,"
            "\"nothing\":null,\"items\":[1,2.5,\"x\\\"y\\n\"]}");
}

TEST(Json, RoundTripsThroughParse) {
  Json doc = Json::object();
  doc.set("name", "round trip é\t");
  doc.set("big", std::uint64_t{18446744073709551615ull});
  doc.set("neg", std::int64_t{-123456789});
  doc.set("pi", 3.140625);  // exactly representable
  Json arr = Json::array();
  for (int i = 0; i < 4; ++i) arr.push(i);
  doc.set("seq", std::move(arr));

  std::string error;
  const auto parsed = Json::parse(doc.dump(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->dump(), doc.dump());
  // Pretty-printed form parses back to the same compact dump too.
  const auto pretty = Json::parse(doc.dump(2), &error);
  ASSERT_TRUE(pretty.has_value()) << error;
  EXPECT_EQ(pretty->dump(), doc.dump());
}

TEST(Json, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Json::parse("{\"a\":", &error).has_value());
  EXPECT_FALSE(Json::parse("[1,2,]", &error).has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing", &error).has_value());
  EXPECT_FALSE(Json::parse("'single'", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST_F(ReportTest, CapturesTablesSpansAndCounters) {
  { auto s = Trace::span("phase"); }
  Counters::incr("widgets", 5);

  RunReport report("unit_report");
  report.set_meta("seed", std::uint64_t{7});
  Table t({"circuit", "gates"});
  t.row().add("c17").add(std::uint64_t{6});
  report.add_table("demo", t);
  Json rec = Json::object();
  rec.set("role", "original");
  report.add_record("circuits", std::move(rec));

  const Json doc = report.to_json();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("name")->as_string(), "unit_report");
  EXPECT_EQ(doc.find("meta")->find("seed")->as_u64(), 7u);
  EXPECT_GE(doc.find("wall_seconds")->as_double(), 0.0);

  const Json* tables = doc.find("tables");
  ASSERT_NE(tables, nullptr);
  const Json* demo = tables->find("demo");
  ASSERT_NE(demo, nullptr);
  ASSERT_EQ(demo->find("rows")->size(), 1u);
  EXPECT_EQ(demo->find("rows")->at(0).find("circuit")->as_string(), "c17");
  EXPECT_EQ(demo->find("rows")->at(0).find("gates")->as_string(), "6");

  bool saw_span = false;
  const Json* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  for (std::size_t i = 0; i < spans->size(); ++i) {
    saw_span |= spans->at(i).find("label")->as_string() == "phase";
  }
  EXPECT_TRUE(saw_span);

  const Json* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("widgets"), nullptr);
  EXPECT_EQ(counters->find("widgets")->as_u64(), 5u);

  ASSERT_NE(doc.find("circuits"), nullptr);
  EXPECT_EQ(doc.find("circuits")->at(0).find("role")->as_string(), "original");

  // The whole document survives a serialize/parse round trip.
  std::string error;
  const auto parsed = Json::parse(doc.dump(2), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->dump(), doc.dump());
}

TEST_F(ReportTest, JsonlEmitsOneParseableRecordPerLine) {
  { auto s = Trace::span("p"); }
  Counters::incr("c", 2);
  Counters::observe("d", 1.5);
  RunReport report("jsonl_demo");
  Table t({"a"});
  t.row().add("v");
  report.add_table("t", t);

  std::ostringstream os;
  report.write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  bool saw_run = false;
  while (std::getline(is, line)) {
    ++lines;
    std::string error;
    const auto rec = Json::parse(line, &error);
    ASSERT_TRUE(rec.has_value()) << error << " in: " << line;
    ASSERT_NE(rec->find("type"), nullptr);
    saw_run |= rec->find("type")->as_string() == "run";
  }
  EXPECT_GE(lines, 4u);  // run + span + counter + row at minimum
  EXPECT_TRUE(saw_run);
}

TEST_F(ReportTest, ResynthCountersMatchReturnedStats) {
  Netlist nl = make_benchmark("cmp8");
  ResynthOptions opt;
  opt.k = 5;
  const ResynthStats st = resynthesize(nl, opt);

  EXPECT_EQ(Counters::value("resynth.runs"), 1u);
  EXPECT_EQ(Counters::value("resynth.passes"), st.passes);
  EXPECT_EQ(Counters::value("resynth.replacements"), st.replacements);
  EXPECT_EQ(Counters::value("resynth.cones_considered"), st.cones_considered);
  EXPECT_EQ(Counters::value("resynth.comparison_cones"), st.comparison_cones);

  // Per-pass history is consistent with the aggregate stats.
  ASSERT_EQ(st.history.size(), st.passes);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < st.history.size(); ++i) {
    EXPECT_EQ(st.history[i].pass, i + 1);
    total += st.history[i].replacements;
  }
  EXPECT_EQ(total, st.replacements);
  if (!st.history.empty()) {
    EXPECT_EQ(st.history.back().gates, st.gates_after);
    EXPECT_EQ(st.history.back().paths, st.paths_after);
  }

  // Spans were recorded for the run and for each pass.
  const auto snap = Trace::snapshot();
  bool saw_run = false, saw_pass = false;
  for (const SpanStats& s : snap) {
    if (s.label == "resynth") {
      saw_run = true;
      EXPECT_EQ(s.count, 1u);
    }
    if (s.label == "resynth.pass") {
      saw_pass = true;
      EXPECT_EQ(s.count, st.passes);
    }
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_pass);
}

#else  // COMPSYN_TRACE == 0

TEST(ObsDisabled, StubsCompileAndReturnEmpty) {
  obs_set_enabled(true);  // runtime enable has no effect when compiled out
  {
    auto s = Trace::span("nothing");
  }
  Counters::incr("nothing");
  EXPECT_FALSE(obs_enabled());
  EXPECT_TRUE(Trace::snapshot().empty());
  EXPECT_EQ(Counters::value("nothing"), 0u);
}

#endif

// Consumers parse report files long after the producing run is gone, so the
// failure modes of interest are on-disk: a complete file must round-trip,
// and a truncated or corrupted one must be *rejected* by the strict parser,
// never misread as a shorter-but-valid report.
TEST(ReportRoundTrip, WrittenFileParsesBackIdentically) {
  RunReport report("roundtrip");
  report.set_meta("status", "ok");
  report.set_meta("k", std::uint64_t{6});
  Json rec = Json::object();
  rec.set("name", "c17");
  rec.set("gates", std::uint64_t{6});
  report.add_record("circuits", std::move(rec));

  const std::string path = testing::TempDir() + "compsyn_obs_roundtrip.json";
  std::string error;
  ASSERT_TRUE(report.write(path, &error)) << error;

  std::ifstream is(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  is.close();
  ASSERT_FALSE(text.empty());
  const auto parsed = Json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->find("name")->as_string(), "roundtrip");
  EXPECT_EQ(parsed->find("meta")->find("status")->as_string(), "ok");
  EXPECT_EQ(parsed->find("meta")->find("k")->as_u64(), 6u);
  EXPECT_EQ(parsed->find("circuits")->at(0).find("gates")->as_u64(), 6u);
  // Dump -> parse -> dump is a fixpoint.
  EXPECT_EQ(Json::parse(parsed->dump(2))->dump(), parsed->dump());
  std::remove(path.c_str());
}

TEST(ReportRoundTrip, TruncatedReportFailsToParse) {
  RunReport report("truncated");
  report.set_meta("status", "ok");
  for (int i = 0; i < 8; ++i) {
    Json rec = Json::object();
    rec.set("i", static_cast<std::uint64_t>(i));
    report.add_record("rows", std::move(rec));
  }
  const std::string text = report.to_json().dump(2);
  for (double frac : {0.1, 0.5, 0.9}) {
    const auto cut = static_cast<std::size_t>(text.size() * frac);
    std::string error;
    EXPECT_FALSE(Json::parse(text.substr(0, cut), &error).has_value())
        << "fraction " << frac;
    EXPECT_FALSE(error.empty());
  }
}

TEST(ReportRoundTrip, CorruptedReportFailsToParse) {
  RunReport report("corrupt");
  report.set_meta("status", "ok");
  const std::string text = report.to_json().dump(2);
  // Structural damage at assorted positions: braces, quotes, separators.
  const struct { char find; char replace; } edits[] = {
      {'{', '<'}, {'"', '\''}, {':', ';'}, {'}', '!'}};
  for (const auto& e : edits) {
    std::string bad = text;
    const auto pos = bad.find(e.find);
    ASSERT_NE(pos, std::string::npos) << e.find;
    bad[pos] = e.replace;
    EXPECT_FALSE(Json::parse(bad).has_value())
        << "edit '" << e.find << "' -> '" << e.replace << "'";
  }
}

}  // namespace
}  // namespace compsyn
