#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "bench_io/bench_io.hpp"
#include "paths/paths.hpp"

namespace compsyn {
namespace {

TEST(PathCount, SingleGate) {
  Netlist nl("g");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, b});
  nl.mark_output(g);
  auto pc = count_paths(nl);
  EXPECT_EQ(pc.total, 2u);
  EXPECT_EQ(pc.np[g], 2u);
  EXPECT_EQ(pc.np[a], 1u);
}

TEST(PathCount, ChainHasOnePathPerInput) {
  Netlist nl("chain");
  NodeId a = nl.add_input();
  NodeId prev = a;
  for (int i = 0; i < 10; ++i) prev = nl.add_gate(GateType::Not, {prev});
  nl.mark_output(prev);
  EXPECT_EQ(count_paths(nl).total, 1u);
}

TEST(PathCount, ReconvergentFanoutMultiplies) {
  // a fans out to two NOTs that reconverge: 2 paths.
  Netlist nl("recon");
  NodeId a = nl.add_input();
  NodeId n1 = nl.add_gate(GateType::Not, {a});
  NodeId n2 = nl.add_gate(GateType::Buf, {a});
  NodeId g = nl.add_gate(GateType::And, {n1, n2});
  nl.mark_output(g);
  EXPECT_EQ(count_paths(nl).total, 2u);
}

TEST(PathCount, OutputBranchesCountPerOutput) {
  // One stem marked as feeding two outputs through separate gates.
  Netlist nl("mo");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, b});
  NodeId o1 = nl.add_gate(GateType::Buf, {g});
  NodeId o2 = nl.add_gate(GateType::Not, {g});
  nl.mark_output(o1);
  nl.mark_output(o2);
  EXPECT_EQ(count_paths(nl).total, 4u);
}

TEST(PathCount, ConstantsContributeNoPaths) {
  Netlist nl("k");
  NodeId a = nl.add_input();
  NodeId k = nl.add_const(true);
  NodeId g = nl.add_gate(GateType::And, {a, k});
  nl.mark_output(g);
  EXPECT_EQ(count_paths(nl).total, 1u);
}

/// Builds the SOP f = sum of products over already-created literal nodes.
/// Each product term lists (input index, positive?) pairs.
NodeId build_sop(Netlist& nl, const std::vector<NodeId>& x,
                 const std::vector<std::vector<std::pair<int, bool>>>& terms) {
  std::map<int, NodeId> inverted;
  std::vector<NodeId> ands;
  for (const auto& term : terms) {
    std::vector<NodeId> lits;
    for (auto [i, pos] : term) {
      if (pos) {
        lits.push_back(x[i]);
      } else {
        auto it = inverted.find(i);
        if (it == inverted.end()) {
          it = inverted.emplace(i, nl.add_gate(GateType::Not, {x[i]})).first;
        }
        lits.push_back(it->second);
      }
    }
    ands.push_back(nl.add_gate(GateType::And, lits));
  }
  return nl.add_gate(GateType::Or, ands);
}

// Section 2 example: inputs with N_p = 10, 100, 20, 20 feed
// f_{1,1} = ~x1 x2 x4 + x1 ~x2 ~x3 + x2 ~x3 x4, whose literal counts are
// K_p = (2, 3, 2, 2), giving N_p(f) = 2*10 + 3*100 + 2*20 + 2*20 = 400.
// (The paper prints 310 for this sum, which is an arithmetic typo:
// 20 + 300 + 40 + 40 = 400. The K_p values themselves match.)
TEST(PathCount, PaperSection2Example) {
  Netlist nl("sec2");
  std::vector<NodeId> pi, x;
  const int mult[4] = {10, 100, 20, 20};
  for (int i = 0; i < 4; ++i) {
    pi.push_back(nl.add_input());
    // Give input i exactly mult[i] paths by driving it through a gate with
    // mult[i] duplicate fanins.
    std::vector<NodeId> dup(mult[i], pi[i]);
    x.push_back(nl.add_gate(GateType::Or, dup));
  }
  NodeId f = build_sop(nl, x,
                       {{{0, false}, {1, true}, {3, true}},
                        {{0, true}, {1, false}, {2, false}},
                        {{1, true}, {2, false}, {3, true}}});
  nl.mark_output(f);
  EXPECT_EQ(count_paths(nl).total, 400u);
}

// The K_p-weighted formula N_p(g) = sum N_p(leaf) * K_p(leaf) from Section 2,
// checked on an arbitrary two-level implementation.
TEST(PathCount, KpWeightedFormulaHolds) {
  Netlist nl("kp");
  std::vector<NodeId> x;
  for (int i = 0; i < 3; ++i) x.push_back(nl.add_input());
  NodeId f = build_sop(nl, x,
                       {{{0, true}, {1, true}},
                        {{1, false}, {2, true}},
                        {{0, false}, {2, false}}});
  nl.mark_output(f);
  // Literal counts: x0: 2, x1: 2, x2: 2; all inputs have N_p = 1.
  EXPECT_EQ(count_paths(nl).total, 6u);
}

TEST(PathCount, OverflowThrows) {
  Netlist nl("ovf");
  NodeId prev = nl.add_input();
  for (int i = 0; i < 70; ++i) prev = nl.add_gate(GateType::And, {prev, prev});
  nl.mark_output(prev);
  EXPECT_THROW(count_paths(nl), std::overflow_error);
}

Netlist c17() {
  return read_bench_string(R"(
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)", "c17");
}

TEST(PathCount, C17HasElevenPaths) {
  // By hand: 22 <- {10:{1,3}, 16:{2, 11:{3,6}}} = 2+1+2 = 5
  //          23 <- {16:{2,11:{3,6}}, 19:{11:{3,6}, 7}} = 3+3 = 6
  EXPECT_EQ(count_paths(c17()).total, 11u);
}

TEST(PathEnum, MatchesCountAndIdsAreDense) {
  Netlist nl = c17();
  auto pc = count_paths(nl);
  auto paths = enumerate_paths(nl);
  ASSERT_EQ(paths.size(), pc.total);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(paths[i].id, i) << "ids must be dense and in order";
    // Path structure: starts at an input, ends at an output, consecutive
    // nodes are fanin-connected.
    const auto& p = paths[i].nodes;
    EXPECT_EQ(nl.node(p.front()).type, GateType::Input);
    EXPECT_TRUE(nl.node(p.back()).is_output);
    for (std::size_t j = 1; j < p.size(); ++j) {
      bool connected = false;
      for (NodeId f : nl.node(p[j]).fanins) connected |= f == p[j - 1];
      EXPECT_TRUE(connected) << "path " << i << " hop " << j;
    }
  }
}

TEST(PathEnum, CapRespected) {
  Netlist nl = c17();
  auto paths = enumerate_paths(nl, 4);
  EXPECT_EQ(paths.size(), 4u);
}

TEST(PathEnum, PathFromIdInvertsEnumeration) {
  Netlist nl = c17();
  auto pc = count_paths(nl);
  auto paths = enumerate_paths(nl);
  for (const auto& p : paths) {
    Path q = path_from_id(nl, pc, p.id);
    EXPECT_EQ(q.nodes, p.nodes) << "id " << p.id;
  }
}

TEST(PathCount, DeadNodesIgnored) {
  Netlist nl("dead");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, b});
  NodeId junk = nl.add_gate(GateType::Or, {a, b});
  (void)junk;
  nl.mark_output(g);
  nl.sweep();
  EXPECT_EQ(count_paths(nl).total, 2u);
}

TEST(PathCount, OutputOffsetsPartitionIds) {
  Netlist nl = c17();
  auto pc = count_paths(nl);
  ASSERT_EQ(pc.output_offsets.size(), 3u);
  EXPECT_EQ(pc.output_offsets[0], 0u);
  EXPECT_EQ(pc.output_offsets[1], 5u);
  EXPECT_EQ(pc.output_offsets[2], 11u);
}

// The clamped variant is the boundary-safe sibling of count_paths: same
// numbers below 2^63, saturation (never a throw) above it.
TEST(PathCount, ClampedSaturatesInsteadOfThrowing) {
  Netlist nl("ovf");
  NodeId prev = nl.add_input();
  for (int i = 0; i < 70; ++i) prev = nl.add_gate(GateType::And, {prev, prev});
  nl.mark_output(prev);
  EXPECT_THROW(count_paths(nl), std::overflow_error);  // exact API unchanged
  const PathCounts pc = count_paths_clamped(nl);
  EXPECT_EQ(pc.total, kPathCountSaturated);
}

TEST(PathCount, ClampedMatchesExactBelowSaturation) {
  Netlist nl = c17();
  EXPECT_EQ(count_paths_clamped(nl).total, count_paths(nl).total);
  Netlist chain("chain");
  NodeId a = chain.add_input();
  NodeId b = chain.add_input();
  NodeId g = chain.add_gate(GateType::And, {a, b});
  chain.mark_output(g);
  EXPECT_EQ(count_paths_clamped(chain).total, 2u);
}

TEST(PathCount, FormatPathTotal) {
  EXPECT_EQ(format_path_total(0), "0");
  EXPECT_EQ(format_path_total(12345), "12345");
  EXPECT_EQ(format_path_total(kPathCountSaturated - 1),
            std::to_string(kPathCountSaturated - 1));
  EXPECT_EQ(format_path_total(kPathCountSaturated), ">=2^63");
  EXPECT_EQ(format_path_total(kPathCountSaturated + 12345), ">=2^63");
}

}  // namespace
}  // namespace compsyn
