#include <gtest/gtest.h>

#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "paths/paths.hpp"
#include "rar/rar.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

TEST(Extraction, SharedPairExtractedOnce) {
  // Two AND3 gates sharing the pair (a, b): extraction saves one equivalent
  // gate (2x AND3 = 4 equiv -> 2x AND2 + AND2 divisor = 3 equiv).
  Netlist nl("x");
  NodeId a = nl.add_input("a");
  NodeId b = nl.add_input("b");
  NodeId c = nl.add_input("c");
  NodeId d = nl.add_input("d");
  NodeId g1 = nl.add_gate(GateType::And, {a, b, c});
  NodeId g2 = nl.add_gate(GateType::And, {a, b, d});
  nl.mark_output(g1);
  nl.mark_output(g2);
  Netlist ref = nl.compacted();
  EXPECT_EQ(nl.equivalent_gate_count(), 4u);
  const unsigned created = extract_common_pairs(nl);
  EXPECT_EQ(created, 1u);
  EXPECT_EQ(nl.equivalent_gate_count(), 3u);
  Rng rng(1);
  auto res = check_equivalent(nl, ref, rng);
  EXPECT_TRUE(res.equivalent) << res.message;
  EXPECT_TRUE(res.exhaustive);
}

TEST(Extraction, WorksForNorFamily) {
  Netlist nl("x");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId c = nl.add_input();
  NodeId d = nl.add_input();
  NodeId g1 = nl.add_gate(GateType::Nor, {a, b, c});
  NodeId g2 = nl.add_gate(GateType::Nor, {a, b, d});
  NodeId g3 = nl.add_gate(GateType::Or, {a, b, c, d});
  nl.mark_output(g1);
  nl.mark_output(g2);
  nl.mark_output(g3);
  Netlist ref = nl.compacted();
  const std::uint64_t before = nl.equivalent_gate_count();
  extract_common_pairs(nl);
  EXPECT_LT(nl.equivalent_gate_count(), before);
  Rng rng(2);
  EXPECT_TRUE(check_equivalent(nl, ref, rng).equivalent);
}

TEST(Extraction, PathCountNotIncreased) {
  Netlist nl = make_benchmark("syn150");
  const std::uint64_t paths_before = count_paths(nl).total;
  extract_common_pairs(nl);
  EXPECT_LE(count_paths(nl).total, paths_before);
}

TEST(Extraction, NoPairNoChange) {
  Netlist nl("none");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, b});
  nl.mark_output(g);
  EXPECT_EQ(extract_common_pairs(nl), 0u);
}

TEST(Rar, PreservesFunctionOnSuiteCircuits) {
  for (const char* name : {"add8", "cmp8", "syn150"}) {
    Netlist nl = make_benchmark(name);
    Netlist ref = nl.compacted();
    RarOptions opt;
    opt.max_adds = 8;
    opt.seed = 3;
    RarStats st = rar_optimize(nl, opt);
    EXPECT_LE(st.gates_after, st.gates_before) << name;
    Rng rng(4);
    auto res = check_equivalent(nl, ref, rng, /*random_words=*/128);
    EXPECT_TRUE(res.equivalent) << name << ": " << res.message;
    EXPECT_TRUE(nl.check().empty()) << name << ": " << nl.check();
  }
}

TEST(Rar, ReducesGatesOnSopHeavyCircuit) {
  // Synthetic circuits carry two-level SOP blobs; extraction plus RAR must
  // find substantial sharing.
  Netlist nl = make_benchmark("syn300");
  RarOptions opt;
  opt.max_adds = 10;
  RarStats st = rar_optimize(nl, opt);
  EXPECT_LT(st.gates_after, st.gates_before);
}

TEST(Rar, StatsConsistent) {
  Netlist nl = make_benchmark("syn150");
  const std::uint64_t g0 = nl.equivalent_gate_count();
  const std::uint64_t p0 = count_paths(nl).total;
  RarOptions opt;
  opt.max_adds = 4;
  RarStats st = rar_optimize(nl, opt);
  EXPECT_EQ(st.gates_before, g0);
  EXPECT_EQ(st.paths_before, p0);
  EXPECT_EQ(st.gates_after, nl.equivalent_gate_count());
  EXPECT_EQ(st.paths_after, count_paths(nl).total);
}

TEST(Rar, IngredientsCanBeDisabled) {
  Netlist nl = make_benchmark("syn150");
  Netlist ref = nl.compacted();
  RarOptions opt;
  opt.run_extraction = false;
  opt.run_addition_removal = false;
  opt.run_redundancy_removal = false;
  RarStats st = rar_optimize(nl, opt);
  EXPECT_EQ(st.extracted, 0u);
  EXPECT_EQ(st.additions, 0u);
  Rng rng(5);
  EXPECT_TRUE(check_equivalent(nl, ref, rng).equivalent);
}

TEST(Rar, AdditionRemovalAloneKeepsFunction) {
  Netlist nl = make_benchmark("cmp8");
  Netlist ref = nl.compacted();
  RarOptions opt;
  opt.run_extraction = false;
  opt.run_redundancy_removal = false;
  opt.max_adds = 6;
  opt.seed = 11;
  rar_optimize(nl, opt);
  Rng rng(6);
  auto res = check_equivalent(nl, ref, rng);
  EXPECT_TRUE(res.equivalent) << res.message;
  EXPECT_TRUE(res.exhaustive);
}

}  // namespace
}  // namespace compsyn
