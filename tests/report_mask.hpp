// Shared report-masking helper for determinism and golden-reference tests:
// every field of a run report is load-bearing and must be byte-stable except
// the wall-clock ones, which legitimately vary between runs.
#pragma once

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace compsyn {

/// Masks the fields that legitimately vary between runs -- wall-clock
/// seconds and per-span nanosecond totals -- and returns the rest of the
/// report as a dump string.
inline std::string masked_report_dump(const Json& j) {
  if (j.is_object()) {
    std::ostringstream os;
    os << "{";
    for (const auto& [k, v] : j.items()) {
      const bool masked =
          k == "wall_seconds" ||
          (k.size() > 3 && k.compare(k.size() - 3, 3, "_ns") == 0);
      os << '"' << k << "\":" << (masked ? "\"MASKED\"" : masked_report_dump(v))
         << ",";
    }
    os << "}";
    return os.str();
  }
  if (j.is_array()) {
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < j.size(); ++i) os << masked_report_dump(j.at(i)) << ",";
    os << "]";
    return os.str();
  }
  return j.dump();
}

/// Rewrites the "spans" array of a masked report dump into label order.
/// Trace::snapshot() emits spans sorted by measured total time, so two spans
/// with near-equal totals can swap places between runs purely from machine
/// load -- an ordering masking alone cannot hide. Comparisons that pin the
/// span SET and its stats (golden files, cross-run diffs) apply this to both
/// sides; everything inside each span object still compares byte-for-byte.
inline std::string label_ordered_spans(const std::string& masked) {
  const std::string key = "\"spans\":[";
  const std::size_t start = masked.find(key);
  if (start == std::string::npos) return masked;
  std::size_t i = start + key.size();
  std::vector<std::string> items;
  while (i < masked.size() && masked[i] == '{') {
    std::size_t j = i;
    int depth = 0;
    do {
      if (masked[j] == '{') ++depth;
      else if (masked[j] == '}') --depth;
      ++j;
    } while (depth > 0 && j < masked.size());
    items.push_back(masked.substr(i, j - i));
    i = j;
    if (i < masked.size() && masked[i] == ',') ++i;
  }
  const auto label_of = [](const std::string& s) {
    const std::string lk = "\"label\":\"";
    const std::size_t p = s.find(lk);
    if (p == std::string::npos) return s;
    const std::size_t e = s.find('"', p + lk.size());
    return s.substr(p + lk.size(), e - p - lk.size());
  };
  std::stable_sort(items.begin(), items.end(),
                   [&](const std::string& a, const std::string& b) {
                     return label_of(a) < label_of(b);
                   });
  std::string out = masked.substr(0, start + key.size());
  for (const std::string& item : items) {
    out += item;
    out += ',';
  }
  out += masked.substr(i);
  return out;
}

}  // namespace compsyn
