// Shared report-masking helper for determinism and golden-reference tests:
// every field of a run report is load-bearing and must be byte-stable except
// the wall-clock ones, which legitimately vary between runs.
#pragma once

#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace compsyn {

/// Masks the fields that legitimately vary between runs -- wall-clock
/// seconds and per-span nanosecond totals -- and returns the rest of the
/// report as a dump string.
inline std::string masked_report_dump(const Json& j) {
  if (j.is_object()) {
    std::ostringstream os;
    os << "{";
    for (const auto& [k, v] : j.items()) {
      const bool masked =
          k == "wall_seconds" ||
          (k.size() > 3 && k.compare(k.size() - 3, 3, "_ns") == 0);
      os << '"' << k << "\":" << (masked ? "\"MASKED\"" : masked_report_dump(v))
         << ",";
    }
    os << "}";
    return os.str();
  }
  if (j.is_array()) {
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < j.size(); ++i) os << masked_report_dump(j.at(i)) << ",";
    os << "]";
    return os.str();
  }
  return j.dump();
}

}  // namespace compsyn
