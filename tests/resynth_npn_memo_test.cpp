// Memo-on vs memo-off differential: the NPN-orbit identification cache
// (core/comparison.cpp, IdentifyOptions::npn_memo) must be invisible in
// results -- identical resynthesized netlists, stats, and path counts on
// real Table 2 suite circuits, with the memo only changing how much search
// runs. Also exercised at --jobs=4 so the thread-local orbit tier runs
// under real exec-layer parallelism (this test is in the TSan CI tier).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_io/bench_io.hpp"
#include "core/comparison.hpp"
#include "core/resynth.hpp"
#include "exec/exec.hpp"
#include "gen/circuits.hpp"
#include "paths/paths.hpp"

namespace compsyn {
namespace {

struct RunOut {
  std::string bench;
  std::uint64_t gates = 0;
  std::uint64_t paths = 0;
  unsigned passes = 0;
  std::uint64_t replacements = 0;
};

RunOut run_one(const std::string& name, bool npn_memo, unsigned jobs,
               ResynthObjective objective) {
  set_jobs(jobs);
  // Fresh memo state per run so hit/miss history cannot leak between the
  // on and off arms (results must not depend on it either way).
  clear_exact_identification_memo();
  Netlist nl = make_benchmark(name);
  ResynthOptions opt;
  opt.objective = objective;
  opt.k = 5;
  opt.identify.npn_memo = npn_memo;
  const ResynthStats st = resynthesize(nl, opt);
  RunOut out;
  out.bench = write_bench_string(nl.compacted());
  out.gates = nl.equivalent_gate_count();
  out.paths = count_paths(nl).total;
  out.passes = st.passes;
  out.replacements = st.replacements;
  return out;
}

class NpnMemoDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(NpnMemoDifferential, IdenticalNetlistsWithMemoOnAndOff) {
  const std::string name = GetParam();
  for (const ResynthObjective objective :
       {ResynthObjective::Gates, ResynthObjective::Paths}) {
    const RunOut off = run_one(name, /*npn_memo=*/false, /*jobs=*/1, objective);
    for (unsigned jobs : {1u, 4u}) {
      const RunOut on = run_one(name, /*npn_memo=*/true, jobs, objective);
      EXPECT_EQ(on.bench, off.bench)
          << name << ": netlist differs with npn_memo on (jobs=" << jobs << ")";
      EXPECT_EQ(on.gates, off.gates) << name;
      EXPECT_EQ(on.paths, off.paths) << name;
      EXPECT_EQ(on.passes, off.passes) << name;
      EXPECT_EQ(on.replacements, off.replacements) << name;
    }
  }
  set_jobs(1);
}

INSTANTIATE_TEST_SUITE_P(Table2, NpnMemoDifferential,
                         ::testing::Values("c17", "s27", "dec5", "mux4",
                                           "cmp8", "add8"));

TEST(NpnMemoStats, OrbitTierActuallyEngages) {
  // Sanity that the differential above is not vacuous: the on-arm must
  // canonicalize and reuse. Stats are process-global monotone tallies, so
  // compare snapshots around a fresh-memo run.
  set_jobs(1);
  clear_exact_identification_memo();
  const NpnIdentifyStats before = npn_identify_stats();
  Netlist nl = make_benchmark("cmp8");
  ResynthOptions opt;
  opt.k = 5;
  resynthesize(nl, opt);
  const NpnIdentifyStats after = npn_identify_stats();
  EXPECT_GT(after.canonicalizations, before.canonicalizations);
  EXPECT_GT(after.exact_searches, before.exact_searches);
  // Reuse happened (negative or polarity-transform): fewer searches than
  // canonicalizations means some tier-1 misses were served by the orbit.
  EXPECT_GT(after.orbit_hits, before.orbit_hits);
}

}  // namespace
}  // namespace compsyn
