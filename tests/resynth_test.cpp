#include <gtest/gtest.h>

#include <map>

#include "bench_io/bench_io.hpp"
#include "core/resynth.hpp"
#include "netlist/equivalence.hpp"
#include "paths/paths.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// Builds a naive two-level SOP for an interval function [lo, hi] over n
/// inputs: one AND per minterm, ORed together -- maximally wasteful, so the
/// procedures have something to find.
Netlist interval_sop(unsigned n, std::uint32_t lo, std::uint32_t hi) {
  Netlist nl("sop");
  std::vector<NodeId> x, xn;
  for (unsigned i = 0; i < n; ++i) x.push_back(nl.add_input("x" + std::to_string(i)));
  for (unsigned i = 0; i < n; ++i) xn.push_back(nl.add_gate(GateType::Not, {x[i]}));
  std::vector<NodeId> terms;
  for (std::uint32_t m = lo; m <= hi; ++m) {
    std::vector<NodeId> lits;
    for (unsigned i = 0; i < n; ++i) {
      lits.push_back(((m >> (n - 1 - i)) & 1u) ? x[i] : xn[i]);
    }
    terms.push_back(nl.add_gate(GateType::And, lits));
  }
  NodeId out = terms.size() == 1 ? terms[0] : nl.add_gate(GateType::Or, terms);
  nl.mark_output(out);
  return nl;
}

/// A deterministic random multilevel circuit for property tests.
Netlist random_circuit(Rng& rng, unsigned n_in, unsigned n_gates, unsigned n_out) {
  Netlist nl("rand");
  std::vector<NodeId> pool;
  for (unsigned i = 0; i < n_in; ++i) pool.push_back(nl.add_input());
  const GateType kinds[] = {GateType::And, GateType::Or,   GateType::Nand,
                            GateType::Nor, GateType::Not,  GateType::And,
                            GateType::Or,  GateType::Xor};
  for (unsigned i = 0; i < n_gates; ++i) {
    const GateType t = kinds[rng.below(8)];
    const unsigned arity = t == GateType::Not ? 1 : 2 + rng.below(2);
    std::vector<NodeId> fi;
    for (unsigned j = 0; j < arity; ++j) {
      fi.push_back(pool[rng.below(pool.size())]);
    }
    pool.push_back(nl.add_gate(t, fi));
  }
  for (unsigned i = 0; i < n_out; ++i) {
    nl.mark_output(pool[pool.size() - 1 - i]);
  }
  nl.sweep();
  return nl;
}

TEST(Resynth, SopOfIntervalCollapsesToUnit) {
  // Minterm-level SOP of [1,6] over 3 vars: 6 AND3 terms + one OR6 = 17
  // equivalent gates, 18 paths. The comparison unit needs 5 gates, 6 paths.
  // Reaching the full cone requires expanding through intermediate cones
  // wider than K (the expand_slack extension).
  Netlist nl = interval_sop(3, 1, 6);
  Netlist ref = nl.compacted();
  const std::uint64_t gates_before = nl.equivalent_gate_count();
  EXPECT_EQ(gates_before, 17u);
  const std::uint64_t paths_before = count_paths(nl).total;
  ResynthOptions opt;
  opt.objective = ResynthObjective::Gates;
  opt.k = 5;
  opt.cone_slack = 8;
  opt.max_cones = 5000;
  ResynthStats st = resynthesize(nl, opt);
  EXPECT_GT(st.replacements, 0u);
  EXPECT_LT(nl.equivalent_gate_count(), gates_before);
  EXPECT_LT(count_paths(nl).total, paths_before);
  EXPECT_LE(nl.equivalent_gate_count(), 5u);
  Rng rng(1);
  auto res = check_equivalent(nl, ref, rng);
  EXPECT_TRUE(res.equivalent) << res.message;
  EXPECT_TRUE(res.exhaustive);
}

TEST(Resynth, Procedure2NeverIncreasesGatesOrChangesFunction) {
  Rng rng(1234);
  for (int trial = 0; trial < 15; ++trial) {
    Netlist nl = random_circuit(rng, 6 + trial % 4, 25 + trial * 3, 3);
    if (nl.outputs().empty()) continue;
    Netlist ref = nl.compacted();
    const std::uint64_t gates_before = nl.equivalent_gate_count();
    ResynthStats st = procedure2(nl, 5);
    EXPECT_LE(st.gates_after, gates_before) << "trial " << trial;
    EXPECT_EQ(st.gates_after, nl.equivalent_gate_count());
    Rng r2(trial);
    auto res = check_equivalent(nl, ref, r2);
    EXPECT_TRUE(res.equivalent) << "trial " << trial << ": " << res.message;
    EXPECT_TRUE(nl.check().empty()) << nl.check();
  }
}

TEST(Resynth, Procedure3NeverIncreasesPathsOrChangesFunction) {
  Rng rng(777);
  for (int trial = 0; trial < 15; ++trial) {
    Netlist nl = random_circuit(rng, 6 + trial % 4, 25 + trial * 3, 3);
    if (nl.outputs().empty()) continue;
    Netlist ref = nl.compacted();
    const std::uint64_t paths_before = count_paths(nl).total;
    ResynthStats st = procedure3(nl, 5);
    EXPECT_LE(st.paths_after, paths_before) << "trial " << trial;
    Rng r2(trial);
    auto res = check_equivalent(nl, ref, r2);
    EXPECT_TRUE(res.equivalent) << "trial " << trial << ": " << res.message;
  }
}

TEST(Resynth, StatsAreConsistent) {
  Netlist nl = interval_sop(4, 3, 12);
  const std::uint64_t g0 = nl.equivalent_gate_count();
  const std::uint64_t p0 = count_paths(nl).total;
  ResynthStats st = procedure2(nl, 6);
  EXPECT_EQ(st.gates_before, g0);
  EXPECT_EQ(st.paths_before, p0);
  EXPECT_EQ(st.gates_after, nl.equivalent_gate_count());
  EXPECT_EQ(st.paths_after, count_paths(nl).total);
  EXPECT_GE(st.passes, 1u);
  EXPECT_GE(st.cones_considered, st.comparison_cones);
}

TEST(Resynth, C17IsStable) {
  Netlist nl = read_bench_string(R"(
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)", "c17");
  Netlist ref = nl.compacted();
  ResynthStats st = procedure2(nl, 5);
  EXPECT_LE(st.gates_after, st.gates_before);
  EXPECT_LE(st.paths_after, st.paths_before);
  Rng rng(3);
  auto res = check_equivalent(nl, ref, rng);
  EXPECT_TRUE(res.equivalent) << res.message;
  EXPECT_TRUE(res.exhaustive);
}

TEST(Resynth, ConstantConeEliminated) {
  // g = AND(a, NOT(a), b): constant 0; Procedure 2 must fold it away.
  Netlist nl("const");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId na = nl.add_gate(GateType::Not, {a});
  NodeId g = nl.add_gate(GateType::And, {a, na, b});
  NodeId out = nl.add_gate(GateType::Or, {g, b});
  nl.mark_output(out);
  Netlist ref = nl.compacted();
  ResynthStats st = procedure2(nl, 5);
  (void)st;
  EXPECT_LE(nl.equivalent_gate_count(), 1u);
  Rng rng(4);
  EXPECT_TRUE(check_equivalent(nl, ref, rng).equivalent);
}

TEST(Resynth, RedundantLiteralDropsViaSupportReduction) {
  // g = (a AND b) OR (a AND NOT b) == a: support reduction inside the cone
  // should let the procedures simplify it to a wire.
  Netlist nl("vac");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId nb = nl.add_gate(GateType::Not, {b});
  NodeId t1 = nl.add_gate(GateType::And, {a, b});
  NodeId t2 = nl.add_gate(GateType::And, {a, nb});
  NodeId g = nl.add_gate(GateType::Or, {t1, t2});
  NodeId out = nl.add_gate(GateType::And, {g, b});
  nl.mark_output(out);
  Netlist ref = nl.compacted();
  procedure2(nl, 5);
  EXPECT_LE(nl.equivalent_gate_count(), 1u);  // just AND(a, b) remains
  Rng rng(5);
  auto res = check_equivalent(nl, ref, rng);
  EXPECT_TRUE(res.equivalent) << res.message;
}

TEST(Resynth, CombinedObjectiveBetweenExtremes) {
  Rng rng(55);
  Netlist base = random_circuit(rng, 8, 60, 4);
  Netlist for2 = base.compacted();
  Netlist for3 = base.compacted();
  Netlist forC = base.compacted();
  procedure2(for2, 5);
  procedure3(for3, 5);
  ResynthOptions copt;
  copt.objective = ResynthObjective::Combined;
  copt.k = 5;
  copt.allow_gate_increase = true;
  resynthesize(forC, copt);
  // The combined run must preserve the function...
  Rng r2(56);
  EXPECT_TRUE(check_equivalent(forC, base, r2).equivalent);
  // ... and improve (or hold) the combined measure it optimizes. Individual
  // metrics may trade off, but their weighted sum cannot get worse.
  const double before = static_cast<double>(base.equivalent_gate_count()) +
                        static_cast<double>(count_paths(base).total);
  const double after = static_cast<double>(forC.equivalent_gate_count()) +
                       static_cast<double>(count_paths(forC).total);
  EXPECT_LE(after, before);
}

TEST(Resynth, SampledIdentificationAlsoWorks) {
  Rng rng(66);
  Netlist nl = interval_sop(4, 5, 10);
  Netlist ref = nl.compacted();
  ResynthOptions opt;
  opt.objective = ResynthObjective::Gates;
  opt.k = 5;
  opt.identify.exact = false;
  opt.identify.sample_tries = 200;
  opt.identify.rng = &rng;
  ResynthStats st = resynthesize(nl, opt);
  EXPECT_LE(st.gates_after, st.gates_before);
  Rng r2(67);
  EXPECT_TRUE(check_equivalent(nl, ref, r2).equivalent);
}

TEST(Resynth, RespectsMaxPasses) {
  Netlist nl = interval_sop(4, 1, 14);
  ResynthOptions opt;
  opt.max_passes = 1;
  ResynthStats st = resynthesize(nl, opt);
  EXPECT_EQ(st.passes, 1u);
}

TEST(Resynth, PreservesPrimaryOutputCount) {
  Rng rng(88);
  Netlist nl = random_circuit(rng, 8, 40, 5);
  const std::size_t n_out = nl.outputs().size();
  const std::size_t n_in = nl.inputs().size();
  procedure2(nl, 5);
  EXPECT_EQ(nl.outputs().size(), n_out);
  EXPECT_EQ(nl.inputs().size(), n_in);
}

}  // namespace
}  // namespace compsyn
