// Chaos suite for the robustness layer: every degraded or interrupted path
// must still hand back a verified, function-equivalent netlist, budget stops
// must land at the same place at any job count, and scripted fault injection
// must never corrupt a result. The CI chaos job runs this suite under
// ASan/UBSan.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "atpg/redundancy.hpp"
#include "bench_io/bench_io.hpp"
#include "core/resynth.hpp"
#include "exec/exec.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "robust/inject.hpp"
#include "robust/robust.hpp"
#include "sat/cec.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

const unsigned kJobCounts[] = {1, 2, 8};

/// Restores the job count, clears cancellation, and resets observability
/// around each scenario so chaos from one test never leaks into the next.
struct ChaosGuard {
  ChaosGuard() : prev(jobs()) { robust::clear_cancel(); }
  ~ChaosGuard() {
    set_jobs(prev);
    robust::clear_cancel();
    Counters::reset();
    Trace::reset();
    obs_set_enabled(false);
  }
  unsigned prev;
};

/// SAT-certifies that `got` still computes `want`'s function: the chaos
/// contract is *proven* equivalence, not just "no random vector disagreed".
void expect_certified_equivalent(const Netlist& want, const Netlist& got,
                                 const std::string& what) {
  Rng rng(0xC0FFEE);
  const EquivalenceResult res =
      check_equivalent_mode(want, got, rng, VerifyMode::Both);
  EXPECT_TRUE(res.equivalent) << what << ": " << res.message;
  EXPECT_TRUE(res.proven) << what << ": " << res.message;
}

/// One resynthesis run of syn150 under a fresh budget of `limit` ticks.
/// Returns the stats and leaves the resulting netlist in `out`.
ResynthStats budgeted_resynth(std::uint64_t limit, Netlist& out) {
  out = make_benchmark("syn150");
  robust::Budget budget(limit);
  robust::BudgetScope scope(budget);
  ResynthOptions opt;
  opt.k = 5;
  return resynthesize(out, opt);
}

TEST(ChaosBudget, EveryBudgetYieldsCertifiedNetlist) {
  ChaosGuard guard;
  const Netlist original = make_benchmark("syn150");
  for (std::uint64_t limit : {1ull, 50ull, 200ull, 1000ull, 5000ull}) {
    Netlist nl;
    const ResynthStats st = budgeted_resynth(limit, nl);
    // A budget stop is Degraded with reason Budget; a natural finish is
    // Complete. Nothing else is acceptable from a budget-only run.
    if (st.status == robust::RunStatus::Complete) {
      EXPECT_EQ(st.stop_reason, robust::StopReason::None) << "limit " << limit;
    } else {
      EXPECT_EQ(st.status, robust::RunStatus::Degraded) << "limit " << limit;
      EXPECT_EQ(st.stop_reason, robust::StopReason::Budget)
          << "limit " << limit;
    }
    expect_certified_equivalent(original, nl,
                                "budget=" + std::to_string(limit));
  }
}

TEST(ChaosBudget, TinyBudgetDegrades) {
  ChaosGuard guard;
  Netlist nl;
  const ResynthStats st = budgeted_resynth(1, nl);
  EXPECT_EQ(st.status, robust::RunStatus::Degraded);
  EXPECT_EQ(st.stop_reason, robust::StopReason::Budget);
}

TEST(ChaosBudget, StopPointIsJobsInvariant) {
  ChaosGuard guard;
  for (std::uint64_t limit : {200ull, 1000ull}) {
    std::string reference;
    for (unsigned j : kJobCounts) {
      set_jobs(j);
      Netlist nl;
      const ResynthStats st = budgeted_resynth(limit, nl);
      std::ostringstream os;
      os << write_bench_string(nl.compacted()) << "passes=" << st.passes
         << " repl=" << st.replacements << " cones=" << st.cones_considered
         << " gates=" << st.gates_after << " paths=" << st.paths_after
         << " status=" << robust::to_string(st.status)
         << " reason=" << robust::to_string(st.stop_reason);
      if (j == kJobCounts[0]) {
        reference = os.str();
      } else {
        EXPECT_EQ(os.str(), reference)
            << "budget=" << limit << " differs at jobs=" << j;
      }
    }
  }
}

TEST(ChaosBudget, RedundancyRemovalDegradesGracefully) {
  ChaosGuard guard;
  const Netlist original = make_benchmark("syn300");
  Netlist nl = original;
  robust::Budget budget(1);
  robust::BudgetScope scope(budget);
  const RedundancyRemovalStats st = remove_redundancies(nl);
  EXPECT_EQ(st.status, robust::RunStatus::Degraded);
  EXPECT_EQ(st.stop_reason, robust::StopReason::Budget);
  // A degraded sweep may not claim irredundance...
  EXPECT_FALSE(st.irredundant);
  // ...but whatever it committed must still be the same function.
  expect_certified_equivalent(original, nl, "degraded redundancy removal");
}

TEST(ChaosInject, SatFailuresPreserveEquivalence) {
  ChaosGuard guard;
  std::string err;
  // Fail a scattering of early SAT solves: the engines must treat each
  // Unknown as "don't know, keep the conservative answer".
  const auto plan = robust::FaultPlan::parse("sat:1,sat:2,sat:3,sat:5", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  robust::InjectScope scope(*plan);
  const Netlist original = make_benchmark("syn150");
  Netlist nl = original;
  RedundancyRemovalOptions ropt;
  ropt.sat_fallback = true;
  remove_redundancies(nl, ropt);
  ResynthOptions opt;
  opt.k = 5;
  resynthesize(nl, opt);
  expect_certified_equivalent(original, nl, "sat fault injection");
}

TEST(ChaosInject, OracleTimeoutsPreserveEquivalence) {
  ChaosGuard guard;
  std::string err;
  const auto plan = robust::FaultPlan::parse("oracle:1,oracle:2,oracle:4", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  robust::InjectScope scope(*plan);
  const Netlist original = make_benchmark("syn150");
  Netlist nl = original;
  ResynthOptions opt;
  opt.k = 5;
  opt.use_sdc = true;      // exercise the reachability oracle
  opt.sdc_max_inputs = 4;  // force the SAT-oracle path for this 24-PI circuit
  resynthesize(nl, opt);
  expect_certified_equivalent(original, nl, "oracle fault injection");
}

TEST(ChaosInject, ScriptedBudgetTripReportsInjected) {
  ChaosGuard guard;
  std::string err;
  const auto plan = robust::FaultPlan::parse("budget:50", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  robust::InjectScope iscope(*plan);
  const Netlist original = make_benchmark("syn150");
  Netlist nl = original;
  robust::Budget budget(robust::injected_budget_trip());
  robust::BudgetScope bscope(budget);
  ResynthOptions opt;
  opt.k = 5;
  const ResynthStats st = resynthesize(nl, opt);
  EXPECT_EQ(st.status, robust::RunStatus::Degraded);
  EXPECT_EQ(st.stop_reason, robust::StopReason::Injected);
  expect_certified_equivalent(original, nl, "injected budget trip");
}

TEST(ChaosCancel, PreCancelledRunInterruptsAndStaysEquivalent) {
  ChaosGuard guard;
  const Netlist original = make_benchmark("syn150");
  Netlist nl = original;
  robust::request_cancel(robust::StopReason::Signal, 15);
  ResynthOptions opt;
  opt.k = 5;
  const ResynthStats st = resynthesize(nl, opt);
  robust::clear_cancel();
  EXPECT_EQ(st.status, robust::RunStatus::Interrupted);
  EXPECT_EQ(st.stop_reason, robust::StopReason::Signal);
  expect_certified_equivalent(original, nl, "pre-cancelled resynthesis");
}

TEST(ChaosCancel, RedundancyRemovalHonoursCancellation) {
  ChaosGuard guard;
  const Netlist original = make_benchmark("syn300");
  Netlist nl = original;
  robust::request_cancel(robust::StopReason::Deadline);
  const RedundancyRemovalStats st = remove_redundancies(nl);
  robust::clear_cancel();
  EXPECT_EQ(st.status, robust::RunStatus::Interrupted);
  EXPECT_EQ(st.stop_reason, robust::StopReason::Deadline);
  EXPECT_FALSE(st.irredundant);
  expect_certified_equivalent(original, nl, "cancelled redundancy removal");
}

}  // namespace
}  // namespace compsyn
