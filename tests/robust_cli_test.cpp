// End-to-end CLI tests of resynth_flow as a subprocess: documented exit
// codes, degraded-run reports, checkpoint/halt/resume byte-identity, signal
// handling, and the saturated path-count formatting at the binary boundary.
// The binary path is injected by CMake as RESYNTH_FLOW_PATH.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/json.hpp"

namespace compsyn {
namespace {

#ifndef RESYNTH_FLOW_PATH
#error "RESYNTH_FLOW_PATH must be defined by the build"
#endif

std::string temp_path(const std::string& leaf) {
  return testing::TempDir() + "compsyn_cli_" + leaf;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << text;
  ASSERT_TRUE(os.good()) << path;
}

struct RunResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

/// Runs the flow binary with `args`, capturing stdout/stderr and the real
/// exit code (std::system + WEXITSTATUS).
RunResult run_flow(const std::string& args) {
  static int serial = 0;
  const std::string out_path = temp_path("out" + std::to_string(serial));
  const std::string err_path = temp_path("err" + std::to_string(serial));
  ++serial;
  const std::string cmd = std::string(RESYNTH_FLOW_PATH) + " " + args + " >" +
                          out_path + " 2>" + err_path;
  const int raw = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  r.out = slurp(out_path);
  r.err = slurp(err_path);
  std::remove(out_path.c_str());
  std::remove(err_path.c_str());
  return r;
}

/// Parses a report file; fails the test on parse errors.
Json parse_report(const std::string& path) {
  std::string err;
  auto j = Json::parse(slurp(path), &err);
  EXPECT_TRUE(j.has_value()) << path << ": " << err;
  return j.has_value() ? *j : Json();
}

const Json* meta_of(const Json& report, const char* key) {
  const Json* meta = report.find("meta");
  return meta == nullptr ? nullptr : meta->find(key);
}

/// A 3-rail XOR ladder whose per-level linear map T = [[1,1,0],[0,1,1],
/// [1,1,1]] over GF(2) is invertible, so the outputs depend on all inputs
/// while the path count grows geometrically: 80 levels push it far past
/// 2^63. Three primary inputs keep exhaustive verification instant.
std::string xor_ladder_bench(unsigned levels) {
  std::ostringstream os;
  os << "INPUT(a0)\nINPUT(b0)\nINPUT(c0)\n";
  os << "OUTPUT(a" << levels << ")\nOUTPUT(b" << levels << ")\nOUTPUT(c"
     << levels << ")\n";
  for (unsigned i = 0; i < levels; ++i) {
    os << "a" << i + 1 << " = XOR(a" << i << ", b" << i << ")\n";
    os << "b" << i + 1 << " = XOR(b" << i << ", c" << i << ")\n";
    os << "c" << i + 1 << " = XOR(a" << i << ", b" << i << ", c" << i << ")\n";
  }
  return os.str();
}

TEST(FlowCli, DefaultRunSucceeds) {
  const RunResult r = run_flow("syn150");
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("function preserved: yes"), std::string::npos) << r.out;
}

TEST(FlowCli, UsageErrorsExit2) {
  EXPECT_EQ(run_flow("").exit_code, 2);
  EXPECT_EQ(run_flow("--verify=maybe syn150").exit_code, 2);
  EXPECT_EQ(run_flow("--inject=frob:1 syn150").exit_code, 2);
}

TEST(FlowCli, UnknownCircuitExit3WithErrorReport) {
  const std::string report = temp_path("bad_circuit.json");
  const RunResult r =
      run_flow("--report=" + report + " no_such_circuit_anywhere");
  EXPECT_EQ(r.exit_code, 3) << r.err;
  const Json j = parse_report(report);
  ASSERT_NE(meta_of(j, "status"), nullptr);
  EXPECT_EQ(meta_of(j, "status")->as_string(), "error");
  EXPECT_NE(meta_of(j, "error"), nullptr);
  std::remove(report.c_str());
}

TEST(FlowCli, TinyBudgetDegradesWithVerifiedResult) {
  const std::string report = temp_path("degraded.json");
  const RunResult r = run_flow("--budget=1 --report=" + report + " syn150");
  EXPECT_EQ(r.exit_code, 20) << r.err;
  EXPECT_NE(r.out.find("degraded"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("function preserved: yes"), std::string::npos) << r.out;
  const Json j = parse_report(report);
  ASSERT_NE(meta_of(j, "status"), nullptr);
  EXPECT_EQ(meta_of(j, "status")->as_string(), "degraded");
  ASSERT_NE(meta_of(j, "stop_reason"), nullptr);
  EXPECT_EQ(meta_of(j, "stop_reason")->as_string(), "budget");
  ASSERT_NE(meta_of(j, "function_preserved"), nullptr);
  EXPECT_TRUE(meta_of(j, "function_preserved")->as_bool());
  std::remove(report.c_str());
}

TEST(FlowCli, HaltResumeReproducesUninterruptedRun) {
  const std::string ck_a = temp_path("resume_a.ck.json");
  const std::string ck_b = temp_path("resume_b.ck.json");
  const std::string out_a = temp_path("resume_a.bench");
  const std::string out_b = temp_path("resume_b.bench");
  const std::string flags = "--budget=2000 --k=5 ";

  // Reference: checkpointed but uninterrupted.
  const RunResult ref = run_flow(flags + "--checkpoint=" + ck_a + " --out=" +
                                 out_a + " syn150");
  EXPECT_TRUE(ref.exit_code == 0 || ref.exit_code == 20) << ref.err;

  // Chaos run: the scripted halt kills the process (exit 137) right after
  // the first checkpoint write...
  const RunResult halted =
      run_flow(flags + "--checkpoint=" + ck_b + " --inject=halt:1 --out=" +
               out_b + " syn150");
  EXPECT_EQ(halted.exit_code, 137) << halted.err;

  // ...and resuming from that checkpoint (at a different job count) must
  // produce the byte-identical final netlist.
  const RunResult resumed =
      run_flow(flags + "--resume=" + ck_b + " --jobs=4 --out=" + out_b +
               " syn150");
  EXPECT_EQ(resumed.exit_code, ref.exit_code) << resumed.err;
  EXPECT_NE(resumed.out.find("resumed from"), std::string::npos) << resumed.out;
  const std::string bench_a = slurp(out_a);
  const std::string bench_b = slurp(out_b);
  ASSERT_FALSE(bench_a.empty());
  EXPECT_EQ(bench_a, bench_b);

  for (const std::string& p : {ck_a, ck_b, out_a, out_b}) {
    std::remove(p.c_str());
  }
}

TEST(FlowCli, ResumeFlagMismatchExit3) {
  const std::string ck = temp_path("mismatch.ck.json");
  const RunResult ref =
      run_flow("--budget=2000 --k=5 --checkpoint=" + ck + " syn150");
  EXPECT_TRUE(ref.exit_code == 0 || ref.exit_code == 20) << ref.err;
  // Same checkpoint, different K: the continuation would not match any
  // uninterrupted run, so the flow must refuse.
  const RunResult r = run_flow("--budget=2000 --k=6 --resume=" + ck + " syn150");
  EXPECT_EQ(r.exit_code, 3) << r.err;
  std::remove(ck.c_str());
}

TEST(FlowCli, CorruptCheckpointExit3) {
  const std::string ck = temp_path("corrupt.ck.json");
  const RunResult ref =
      run_flow("--budget=2000 --k=5 --checkpoint=" + ck + " syn150");
  EXPECT_TRUE(ref.exit_code == 0 || ref.exit_code == 20) << ref.err;
  const std::string text = slurp(ck);
  ASSERT_FALSE(text.empty());

  // Truncated file: the strict JSON parser rejects it.
  spit(ck, text.substr(0, text.size() / 2));
  EXPECT_EQ(run_flow("--budget=2000 --k=5 --resume=" + ck + " syn150").exit_code,
            3);

  // Valid JSON, tampered netlist: the integrity hash rejects it.
  std::string tampered = text;
  const auto pos = tampered.find("INPUT(");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 6, "INPUT[");
  spit(ck, tampered);
  EXPECT_EQ(run_flow("--budget=2000 --k=5 --resume=" + ck + " syn150").exit_code,
            3);
  std::remove(ck.c_str());
}

TEST(FlowCli, InjectedCheckpointWriteFailureWarnsAndContinues) {
  const std::string ck = temp_path("wfail.ck.json");
  const RunResult r =
      run_flow("--inject=write:1 --checkpoint=" + ck + " --k=5 syn150");
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.err.find("checkpoint"), std::string::npos) << r.err;
  EXPECT_NE(r.out.find("function preserved: yes"), std::string::npos);
  std::remove(ck.c_str());
}

TEST(FlowCli, SigintInterruptsWithParseableReport) {
  const std::string report = temp_path("sigint.json");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: a long multi-threaded run, stdout/stderr silenced.
    FILE* sink = std::fopen("/dev/null", "w");
    if (sink != nullptr) {
      dup2(fileno(sink), STDOUT_FILENO);
      dup2(fileno(sink), STDERR_FILENO);
    }
    const std::string report_flag = "--report=" + report;
    execl(RESYNTH_FLOW_PATH, RESYNTH_FLOW_PATH, "--jobs=4", report_flag.c_str(),
          "syn1000", static_cast<char*>(nullptr));
    _exit(99);  // exec failed
  }
  // Give the run time to spin up its workers, then interrupt it.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_EQ(kill(pid, SIGINT), 0);
  int raw = 0;
  ASSERT_EQ(waitpid(pid, &raw, 0), pid);
  ASSERT_TRUE(WIFEXITED(raw));
  EXPECT_EQ(WEXITSTATUS(raw), 130);
  const Json j = parse_report(report);
  ASSERT_NE(meta_of(j, "status"), nullptr);
  EXPECT_EQ(meta_of(j, "status")->as_string(), "interrupted");
  std::remove(report.c_str());
}

TEST(FlowCli, DeadlineInterruptsExit21) {
  const RunResult r = run_flow("--deadline=0.05 --jobs=2 syn1000");
  EXPECT_EQ(r.exit_code, 21) << r.out << r.err;
}

TEST(FlowCli, SaturatedPathCountsFormatAtBoundary) {
  const std::string bench = temp_path("ladder.bench");
  const std::string report = temp_path("ladder.json");
  spit(bench, xor_ladder_bench(80));
  const RunResult r =
      run_flow("--budget=1 --report=" + report + " " + bench);
  EXPECT_EQ(r.exit_code, 20) << r.err;
  EXPECT_NE(r.out.find(">=2^63"), std::string::npos) << r.out;
  const Json j = parse_report(report);
  ASSERT_NE(meta_of(j, "paths_before"), nullptr);
  EXPECT_EQ(meta_of(j, "paths_before")->as_string(), ">=2^63");
  std::remove(bench.c_str());
  std::remove(report.c_str());
}

}  // namespace
}  // namespace compsyn
