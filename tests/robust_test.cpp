// Unit tests for the robustness layer: budgets, cancellation, fault plans,
// checkpoint serialization, and the guard's exit-code mapping.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "robust/checkpoint.hpp"
#include "robust/guard.hpp"
#include "robust/inject.hpp"
#include "robust/robust.hpp"
#include "util/errors.hpp"

namespace compsyn::robust {
namespace {

/// Clears cancellation state around each test so scenarios don't leak.
struct CancelGuard {
  CancelGuard() { clear_cancel(); }
  ~CancelGuard() { clear_cancel(); }
};

TEST(RobustStatus, ToStringAndMapping) {
  EXPECT_STREQ(to_string(RunStatus::Complete), "ok");
  EXPECT_STREQ(to_string(RunStatus::Degraded), "degraded");
  EXPECT_STREQ(to_string(RunStatus::Interrupted), "interrupted");
  EXPECT_STREQ(to_string(StopReason::None), "none");
  EXPECT_STREQ(to_string(StopReason::Budget), "budget");
  EXPECT_STREQ(to_string(StopReason::Deadline), "deadline");
  EXPECT_STREQ(to_string(StopReason::Signal), "signal");
  EXPECT_STREQ(to_string(StopReason::Injected), "injected");

  EXPECT_EQ(run_status_for(StopReason::None), RunStatus::Complete);
  EXPECT_EQ(run_status_for(StopReason::Budget), RunStatus::Degraded);
  EXPECT_EQ(run_status_for(StopReason::Injected), RunStatus::Degraded);
  EXPECT_EQ(run_status_for(StopReason::Signal), RunStatus::Interrupted);
  EXPECT_EQ(run_status_for(StopReason::Deadline), RunStatus::Interrupted);
}

TEST(RobustBudget, CountsAndTrips) {
  Budget b(10);
  EXPECT_EQ(b.limit(), 10u);
  EXPECT_FALSE(b.exhausted());
  b.charge(9);
  EXPECT_FALSE(b.exhausted());
  b.charge(1);
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.ticks(), 10u);
}

TEST(RobustBudget, LimitZeroCountsWithoutTripping) {
  Budget b(0);
  b.charge(1'000'000);
  EXPECT_EQ(b.ticks(), 1'000'000u);
  EXPECT_FALSE(b.exhausted());
}

TEST(RobustBudget, ResumeSeedsConsumedTicks) {
  Budget b(100, 60);
  EXPECT_EQ(b.ticks(), 60u);
  b.charge(40);
  EXPECT_TRUE(b.exhausted());
}

TEST(RobustBudget, FreeFunctionsNoOpWithoutScope) {
  EXPECT_FALSE(budget_installed());
  charge(5);  // must not crash
  EXPECT_EQ(ticks_consumed(), 0u);
  EXPECT_FALSE(budget_exhausted());
}

TEST(RobustBudget, ScopeInstallsAndUninstalls) {
  Budget b(3);
  {
    BudgetScope scope(b);
    EXPECT_TRUE(budget_installed());
    charge(2);
    EXPECT_FALSE(budget_exhausted());
    charge(1);
    EXPECT_TRUE(budget_exhausted());
    EXPECT_EQ(ticks_consumed(), 3u);
    EXPECT_TRUE(should_stop());
    EXPECT_EQ(stop_reason(), StopReason::Budget);
  }
  EXPECT_FALSE(budget_installed());
  EXPECT_FALSE(should_stop());
}

TEST(RobustCancel, FirstReasonWins) {
  CancelGuard guard;
  EXPECT_FALSE(cancel_requested());
  request_cancel(StopReason::Deadline);
  request_cancel(StopReason::Signal, 2);  // too late: deadline already won
  EXPECT_TRUE(cancel_requested());
  EXPECT_EQ(cancel_reason(), StopReason::Deadline);
  EXPECT_EQ(cancel_signal(), 0);
  clear_cancel();
  EXPECT_FALSE(cancel_requested());
}

TEST(RobustCancel, PollThrowsWithReason) {
  CancelGuard guard;
  EXPECT_NO_THROW(poll_cancellation());
  request_cancel(StopReason::Signal, 15);
  EXPECT_EQ(cancel_signal(), 15);
  try {
    poll_cancellation();
    FAIL() << "poll_cancellation did not throw";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason, StopReason::Signal);
  }
}

TEST(RobustCancel, CancelOutranksBudgetInStopReason) {
  CancelGuard guard;
  Budget b(1);
  BudgetScope scope(b);
  charge(2);
  EXPECT_EQ(stop_reason(), StopReason::Budget);
  request_cancel(StopReason::Signal, 2);
  EXPECT_EQ(stop_reason(), StopReason::Signal);
}

TEST(RobustDeadline, InertForNonPositiveSeconds) {
  CancelGuard guard;
  {
    DeadlineWatchdog w(0.0);
    DeadlineWatchdog w2(-1.0);
  }
  EXPECT_FALSE(cancel_requested());
}

TEST(RobustDeadline, FiresAndCancels) {
  CancelGuard guard;
  DeadlineWatchdog w(0.02);
  for (int i = 0; i < 500 && !cancel_requested(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(cancel_requested());
  EXPECT_EQ(cancel_reason(), StopReason::Deadline);
}

TEST(RobustDeadline, DestructionBeforeExpiryLeavesNoCancel) {
  CancelGuard guard;
  { DeadlineWatchdog w(30.0); }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(cancel_requested());
}

TEST(FaultPlanParse, AcceptsFullGrammar) {
  std::string err;
  auto plan = FaultPlan::parse("sat:3,oracle:2,write:1,budget:5000,halt:4", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  EXPECT_EQ(plan->sat_failures, std::vector<std::uint64_t>{3});
  EXPECT_EQ(plan->oracle_timeouts, std::vector<std::uint64_t>{2});
  EXPECT_EQ(plan->write_failures, std::vector<std::uint64_t>{1});
  EXPECT_EQ(plan->halts, std::vector<std::uint64_t>{4});
  EXPECT_EQ(plan->budget_trip, 5000u);
}

TEST(FaultPlanParse, RepeatedKindsAccumulate) {
  std::string err;
  auto plan = FaultPlan::parse("sat:1,sat:5,sat:9", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  EXPECT_EQ(plan->sat_failures, (std::vector<std::uint64_t>{1, 5, 9}));
}

TEST(FaultPlanParse, RejectsBadSpecs) {
  std::string err;
  EXPECT_FALSE(FaultPlan::parse("", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("sat", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("sat:", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("sat:x", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("sat:1x", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("frob:1", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("sat:1,,halt:2", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse("sat:1 halt:2", &err).has_value());
}

TEST(FaultInject, HooksFireAtScriptedOrdinals) {
  std::string err;
  auto plan = FaultPlan::parse("sat:2,oracle:1,write:3", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  EXPECT_FALSE(inject_active());
  {
    InjectScope scope(*plan);
    EXPECT_TRUE(inject_active());
    EXPECT_FALSE(inject_sat_failure());  // 1st call: not scripted
    EXPECT_TRUE(inject_sat_failure());   // 2nd call: fails
    EXPECT_FALSE(inject_sat_failure());  // 3rd call: clean again
    EXPECT_TRUE(inject_oracle_timeout());
    EXPECT_FALSE(inject_oracle_timeout());
    EXPECT_FALSE(inject_write_failure());
    EXPECT_FALSE(inject_write_failure());
    EXPECT_TRUE(inject_write_failure());
  }
  EXPECT_FALSE(inject_active());
  // With no plan installed every hook reports "no fault".
  EXPECT_FALSE(inject_sat_failure());
  EXPECT_FALSE(inject_oracle_timeout());
  EXPECT_FALSE(inject_write_failure());
}

TEST(FaultInject, ScopeResetsCounters) {
  std::string err;
  auto plan = FaultPlan::parse("sat:1", &err);
  ASSERT_TRUE(plan.has_value());
  {
    InjectScope scope(*plan);
    EXPECT_TRUE(inject_sat_failure());
    EXPECT_FALSE(inject_sat_failure());
  }
  {
    InjectScope scope(*plan);
    EXPECT_TRUE(inject_sat_failure());  // ordinal counter restarted
  }
}

TEST(FaultInject, InjectedBudgetTripReportsInjected) {
  CancelGuard guard;
  std::string err;
  auto plan = FaultPlan::parse("budget:4", &err);
  ASSERT_TRUE(plan.has_value());
  InjectScope iscope(*plan);
  EXPECT_EQ(injected_budget_trip(), 4u);
  Budget b(plan->budget_trip);
  BudgetScope bscope(b);
  charge(4);
  EXPECT_TRUE(should_stop());
  EXPECT_EQ(stop_reason(), StopReason::Injected);
}

TEST(Checkpoint, Fnv1a64KnownValues) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(fnv1a64("INPUT(a)"), fnv1a64("INPUT(b)"));
}

FlowCheckpoint sample_checkpoint() {
  FlowCheckpoint cp;
  cp.circuit = "syn150";
  cp.proc = "2";
  cp.k = 5;
  cp.weight_gates = 1.0;
  cp.weight_paths = 0.25;
  cp.verify = "both";
  cp.budget_limit = 4000;
  cp.stage = "resynth";
  cp.passes_done = 2;
  cp.ticks = 1234;
  cp.stopped_degraded = false;
  cp.netlist_bench = "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n";
  cp.original_bench = "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n";
  cp.stats = Json::object();
  cp.stats.set("passes", std::uint64_t{2});
  cp.counters = Json::object();
  cp.counters.set("resynth.runs", std::uint64_t{2});
  return cp;
}

TEST(Checkpoint, JsonRoundTrip) {
  const FlowCheckpoint cp = sample_checkpoint();
  const Json j = cp.to_json();
  FlowCheckpoint back;
  std::string err;
  ASSERT_TRUE(back.from_json(j, &err)) << err;
  EXPECT_EQ(back.circuit, cp.circuit);
  EXPECT_EQ(back.proc, cp.proc);
  EXPECT_EQ(back.k, cp.k);
  EXPECT_EQ(back.weight_gates, cp.weight_gates);
  EXPECT_EQ(back.weight_paths, cp.weight_paths);
  EXPECT_EQ(back.verify, cp.verify);
  EXPECT_EQ(back.budget_limit, cp.budget_limit);
  EXPECT_EQ(back.stage, cp.stage);
  EXPECT_EQ(back.passes_done, cp.passes_done);
  EXPECT_EQ(back.ticks, cp.ticks);
  EXPECT_EQ(back.stopped_degraded, cp.stopped_degraded);
  EXPECT_EQ(back.netlist_bench, cp.netlist_bench);
  EXPECT_EQ(back.original_bench, cp.original_bench);
  EXPECT_EQ(back.stats.dump(), cp.stats.dump());
  EXPECT_EQ(back.counters.dump(), cp.counters.dump());
}

TEST(Checkpoint, RejectsTamperedNetlist) {
  Json j = sample_checkpoint().to_json();
  j.set("netlist_bench", "INPUT(a)\nOUTPUT(a)\n");  // hash no longer matches
  FlowCheckpoint back;
  std::string err;
  EXPECT_FALSE(back.from_json(j, &err));
  EXPECT_NE(err.find("hash"), std::string::npos) << err;
}

TEST(Checkpoint, RejectsWrongFormatAndMissingFields) {
  FlowCheckpoint back;
  std::string err;
  Json j = sample_checkpoint().to_json();
  j.set("format", "compsyn-checkpoint-v999");
  EXPECT_FALSE(back.from_json(j, &err));

  Json empty = Json::object();
  EXPECT_FALSE(back.from_json(empty, &err));
}

TEST(Checkpoint, FileRoundTripAndTruncationDetected) {
  const std::string path = testing::TempDir() + "compsyn_ckpt_test.json";
  const FlowCheckpoint cp = sample_checkpoint();
  std::string err;
  ASSERT_TRUE(cp.save(path, &err)) << err;

  FlowCheckpoint back;
  ASSERT_TRUE(back.load(path, &err)) << err;
  EXPECT_EQ(back.netlist_bench, cp.netlist_bench);

  // Truncate the file: the strict JSON parser must reject it.
  std::ifstream is(path);
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  is.close();
  for (double frac : {0.1, 0.5, 0.9}) {
    std::ofstream os(path, std::ios::trunc);
    os << text.substr(0, static_cast<std::size_t>(text.size() * frac));
    os.close();
    EXPECT_FALSE(back.load(path, &err)) << "fraction " << frac;
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, InjectedWriteFailureIsReported) {
  const std::string path = testing::TempDir() + "compsyn_ckpt_fail.json";
  std::string perr;
  auto plan = FaultPlan::parse("write:1", &perr);
  ASSERT_TRUE(plan.has_value());
  InjectScope scope(*plan);
  const FlowCheckpoint cp = sample_checkpoint();
  std::string err;
  EXPECT_FALSE(cp.save(path, &err));
  EXPECT_FALSE(err.empty());
  // The second write (ordinal 2) is not scripted and succeeds.
  EXPECT_TRUE(cp.save(path, &err)) << err;
  std::remove(path.c_str());
}

TEST(Guard, ExitCodesForCancellation) {
  CancelGuard guard;
  request_cancel(StopReason::Signal, 2);
  EXPECT_EQ(exit_code_for_cancel(), 130);
  clear_cancel();
  request_cancel(StopReason::Signal, 15);
  EXPECT_EQ(exit_code_for_cancel(), 143);
  clear_cancel();
  request_cancel(StopReason::Deadline);
  EXPECT_EQ(exit_code_for_cancel(), kExitDeadline);
  clear_cancel();
  request_cancel(StopReason::Injected);
  EXPECT_EQ(exit_code_for_cancel(), kExitDegraded);
}

TEST(Guard, ReportPathScan) {
  const char* argv1[] = {"prog", "--report=/tmp/r.json", "syn150"};
  EXPECT_EQ(report_path_from_args(3, const_cast<char**>(argv1)), "/tmp/r.json");
  const char* argv2[] = {"prog", "syn150"};
  EXPECT_EQ(report_path_from_args(2, const_cast<char**>(argv2)), "");
}

TEST(Guard, MapsExceptionsToDocumentedExitCodes) {
  const char* argv[] = {"prog"};
  char** av = const_cast<char**>(argv);
  EXPECT_EQ(guard_main("t", 1, av, [] { return 0; }), 0);
  EXPECT_EQ(guard_main("t", 1, av, [] { return 7; }), 7);
  EXPECT_EQ(guard_main("t", 1, av,
                       []() -> int { throw InputError("bad input"); }),
            kExitInputError);
  EXPECT_EQ(guard_main("t", 1, av,
                       []() -> int { throw std::invalid_argument("bad"); }),
            kExitInputError);
  EXPECT_EQ(guard_main("t", 1, av,
                       []() -> int { throw std::runtime_error("boom"); }),
            kExitInternalError);
  {
    CancelGuard guard;
    EXPECT_EQ(guard_main("t", 1, av,
                         []() -> int {
                           request_cancel(StopReason::Signal, 2);
                           throw CancelledError(StopReason::Signal);
                         }),
              130);
  }
}

TEST(Guard, WritesErrorReportOnFailure) {
  CancelGuard guard;
  const std::string path = testing::TempDir() + "compsyn_guard_report.json";
  const std::string flag = "--report=" + path;
  const char* argv[] = {"prog", flag.c_str()};
  char** av = const_cast<char**>(argv);
  EXPECT_EQ(guard_main("guard_test", 2, av,
                       []() -> int { throw InputError("no such circuit"); }),
            kExitInputError);
  std::ifstream is(path);
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  std::string jerr;
  auto j = Json::parse(text, &jerr);
  ASSERT_TRUE(j.has_value()) << jerr;
  const Json* meta = j->find("meta");
  ASSERT_NE(meta, nullptr);
  ASSERT_NE(meta->find("status"), nullptr);
  EXPECT_EQ(meta->find("status")->as_string(), "error");
  ASSERT_NE(meta->find("error"), nullptr);
  EXPECT_NE(meta->find("error")->as_string().find("no such circuit"),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace compsyn::robust
