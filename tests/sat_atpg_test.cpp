// SAT fault proving (sat/satpg.hpp) against the PODEM ground truth, plus the
// redundancy-removal SAT fallback that re-decides PODEM-aborted faults.
#include <gtest/gtest.h>

#include <vector>

#include "atpg/podem.hpp"
#include "atpg/redundancy.hpp"
#include "faults/fault.hpp"
#include "faults/fault_sim.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "sat/satpg.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// Confirms the returned PI assignment actually detects the fault.
void expect_detects(const Netlist& nl, const StuckFault& f,
                    const std::vector<bool>& test) {
  ASSERT_EQ(test.size(), nl.inputs().size());
  FaultSimulator sim(nl, {f});
  std::vector<std::uint64_t> pi(nl.inputs().size());
  for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = test[i] ? ~0ull : 0ull;
  sim.simulate_block(pi, 0);
  EXPECT_TRUE(sim.is_detected(0)) << to_string(nl, f);
}

/// Every collapsed fault: unlimited-backtrack PODEM is the ground truth; the
/// SAT engine must agree exactly, and every SAT test must really detect.
void check_agreement(const Netlist& nl) {
  AtpgOptions complete;
  complete.backtrack_limit = 0;  // complete search, no Aborted
  for (const StuckFault& f : enumerate_faults(nl)) {
    const AtpgResult podem = run_podem(nl, f, complete);
    ASSERT_NE(podem.status, AtpgStatus::Aborted) << nl.name();
    const SatFaultResult sat = prove_fault(nl, f);
    ASSERT_NE(sat.status, SatFaultStatus::Unknown)
        << nl.name() << " " << to_string(nl, f);
    if (podem.status == AtpgStatus::Detected) {
      EXPECT_EQ(sat.status, SatFaultStatus::Testable)
          << nl.name() << " " << to_string(nl, f);
      expect_detects(nl, f, sat.test);
    } else {
      EXPECT_EQ(sat.status, SatFaultStatus::Untestable)
          << nl.name() << " " << to_string(nl, f);
    }
  }
}

TEST(SatAtpg, AgreesWithPodemOnC17) { check_agreement(make_c17()); }
TEST(SatAtpg, AgreesWithPodemOnS27) { check_agreement(make_s27()); }
TEST(SatAtpg, AgreesWithPodemOnParityTree) { check_agreement(make_parity_tree(6)); }
TEST(SatAtpg, AgreesWithPodemOnAluSlice) { check_agreement(make_alu_slice(2)); }

TEST(SatAtpg, AgreesWithPodemOnRedundantSynthetic) {
  // Synthetic circuits with redundant consensus terms: the interesting case,
  // because Untestable verdicts must be genuine redundancy proofs.
  SyntheticOptions opt;
  opt.inputs = 9;
  opt.outputs = 4;
  opt.gates = 80;
  opt.redundant_term_chance = 0.8;
  for (std::uint64_t seed : {3ull, 11ull}) {
    opt.seed = seed;
    check_agreement(make_synthetic(opt));
  }
}

TEST(SatAtpg, ProvesClassicRedundancy) {
  // y = a | (a & b): the AND output stuck-at-0 leaves y = a, unchanged.
  Netlist nl("red");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, {a, b});
  const NodeId y = nl.add_gate(GateType::Or, {a, g});
  nl.mark_output(y);
  const SatFaultResult res = prove_fault(nl, StuckFault{g, -1, false});
  EXPECT_EQ(res.status, SatFaultStatus::Untestable);
  // ...while stuck-at-1 on the same line is testable (a=0, b arbitrary).
  const SatFaultResult sa1 = prove_fault(nl, StuckFault{g, -1, true});
  ASSERT_EQ(sa1.status, SatFaultStatus::Testable);
  expect_detects(nl, StuckFault{g, -1, true}, sa1.test);
}

TEST(SatAtpg, BranchFaultIsDistinctFromStem) {
  // Classic branch-vs-stem: s = a&b fans out to y1 = s|c and y2 = s&c. A
  // stuck value on ONE branch must leave the other connection healthy.
  Netlist nl("branch");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId s = nl.add_gate(GateType::And, {a, b});
  const NodeId y1 = nl.add_gate(GateType::Or, {s, c});
  const NodeId y2 = nl.add_gate(GateType::And, {s, c});
  nl.mark_output(y1);
  nl.mark_output(y2);
  for (const StuckFault f :
       {StuckFault{y1, 0, false}, StuckFault{y1, 0, true},
        StuckFault{y2, 0, false}, StuckFault{y2, 0, true},
        StuckFault{s, -1, false}, StuckFault{s, -1, true}}) {
    const AtpgResult podem = run_podem(nl, f, {/*backtrack_limit=*/0});
    const SatFaultResult sat = prove_fault(nl, f);
    ASSERT_NE(sat.status, SatFaultStatus::Unknown);
    EXPECT_EQ(sat.status == SatFaultStatus::Testable,
              podem.status == AtpgStatus::Detected)
        << to_string(nl, f);
    if (sat.status == SatFaultStatus::Testable) expect_detects(nl, f, sat.test);
  }
}

TEST(SatAtpg, TinyBudgetYieldsUnknown) {
  // One propagation is never enough to decide a fault that needs a decision.
  const Netlist nl = make_c17();
  const std::vector<StuckFault> faults = enumerate_faults(nl);
  ASSERT_FALSE(faults.empty());
  const SolverBudget starved{/*max_conflicts=*/0, /*max_propagations=*/1};
  EXPECT_EQ(prove_fault(nl, faults.front(), starved).status,
            SatFaultStatus::Unknown);
}

TEST(SatAtpg, RedundancyFallbackResolvesAbortedFaults) {
  // A backtrack limit of 1 forces PODEM to abort left and right; the SAT
  // fallback must re-decide every aborted fault (its default budget is far
  // beyond what these circuits need), so nothing stays unresolved and the
  // result is still an exact functional match.
  SyntheticOptions opt;
  opt.inputs = 9;
  opt.outputs = 4;
  opt.gates = 80;
  opt.redundant_term_chance = 0.8;
  opt.seed = 3;
  Netlist nl = make_synthetic(opt);
  const Netlist golden = nl;

  RedundancyRemovalOptions ropt;
  ropt.atpg.backtrack_limit = 1;
  ropt.sat_fallback = true;
  ropt.random_filter_blocks = 0;  // no pre-filter: maximise PODEM pressure
  const RedundancyRemovalStats stats = remove_redundancies(nl, ropt);

  EXPECT_GT(stats.aborted, 0u);  // the limit really forced aborts
  EXPECT_EQ(stats.sat_fallback_calls, stats.aborted);
  EXPECT_EQ(stats.sat_unknown, 0u);
  EXPECT_EQ(stats.aborted_unresolved, 0u);
  EXPECT_TRUE(stats.irredundant);

  Rng rng(5);
  const EquivalenceResult eq = check_equivalent(golden, nl, rng);
  EXPECT_TRUE(eq.equivalent);
  EXPECT_TRUE(eq.proven);  // 9 inputs: exhaustive
}

TEST(SatAtpg, IsIrredundantSurvivesPodemAborts) {
  // c17 is irredundant; with a 1-backtrack budget PODEM aborts on some
  // faults, and the SAT re-decision must keep the verdict true.
  EXPECT_TRUE(is_irredundant(make_c17(), {/*backtrack_limit=*/1}));
}

}  // namespace
}  // namespace compsyn
