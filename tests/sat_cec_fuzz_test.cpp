// Seeded CEC fuzz smoke: random synthetic circuit pairs (identical, locally
// mutated, or independently generated), SAT verdict cross-checked against
// the exhaustive-simulation ground truth. Deterministic by construction --
// the seed sweep is fixed -- so a failure is always reproducible.
//
// The differential suites additionally push every pair (and full
// redundancy-removal runs) through BOTH SAT backends, --sat=session and
// --sat=oneshot: verdicts, substitutions, and final netlists must be
// identical, which is the correctness contract of the persistent session.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "atpg/redundancy.hpp"
#include "bench_io/bench_io.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "sat/cec.hpp"
#include "sat/session.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// Applies one random polarity flip to a live gate; returns false if the
/// netlist has no flippable gate.
bool flip_random_gate(Netlist& nl, Rng& rng) {
  std::vector<NodeId> gates;
  for (NodeId n = 0; n < nl.size(); ++n) {
    if (nl.is_dead(n)) continue;
    switch (nl.node(n).type) {
      case GateType::And:
      case GateType::Nand:
      case GateType::Or:
      case GateType::Nor:
      case GateType::Xor:
      case GateType::Xnor:
        gates.push_back(n);
        break;
      default:
        break;
    }
  }
  if (gates.empty()) return false;
  const NodeId g = gates[rng.next() % gates.size()];
  GateType flipped = GateType::And;
  switch (nl.node(g).type) {
    case GateType::And: flipped = GateType::Nand; break;
    case GateType::Nand: flipped = GateType::And; break;
    case GateType::Or: flipped = GateType::Nor; break;
    case GateType::Nor: flipped = GateType::Or; break;
    case GateType::Xor: flipped = GateType::Xnor; break;
    case GateType::Xnor: flipped = GateType::Xor; break;
    default: break;
  }
  nl.redefine(g, flipped, nl.node(g).fanins);
  return true;
}

TEST(SatCecFuzz, RandomCircuitsAgreeWithExhaustiveSimulation) {
  Rng rng(0xF022);
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SyntheticOptions opt;
    opt.inputs = 8 + static_cast<unsigned>(seed % 5);  // 8..12: exhaustive OK
    opt.outputs = 3 + static_cast<unsigned>(seed % 3);
    opt.gates = 60 + static_cast<unsigned>(seed * 7 % 60);
    opt.seed = seed;
    const Netlist a = make_synthetic(opt);
    Netlist b = make_synthetic(opt);

    // Three scenarios per seed: identical, one flipped gate, different seed.
    const unsigned scenario = static_cast<unsigned>(seed % 3);
    if (scenario == 1) {
      if (!flip_random_gate(b, rng)) continue;
    } else if (scenario == 2) {
      SyntheticOptions other = opt;
      other.seed = seed + 1000;
      b = make_synthetic(other);
      if (b.inputs().size() != a.inputs().size() ||
          b.outputs().size() != a.outputs().size()) {
        continue;
      }
    }

    Rng ground_rng(seed);
    const EquivalenceResult truth = check_equivalent(a, b, ground_rng);
    ASSERT_TRUE(truth.proven) << "seed " << seed;  // <= 12 PIs: exhaustive

    const EquivalenceResult sat = check_equivalent_sat(a, b);
    ASSERT_TRUE(sat.proven) << "seed " << seed;
    EXPECT_EQ(sat.equivalent, truth.equivalent)
        << "seed " << seed << " scenario " << scenario;
    if (!sat.equivalent) {
      // Counterexample sanity: it must actually distinguish the circuits.
      std::vector<std::uint64_t> pi(a.inputs().size());
      for (std::size_t i = 0; i < pi.size(); ++i) {
        pi[i] = sat.counterexample[i] ? ~0ull : 0ull;
      }
      const auto va = a.simulate(pi);
      const auto vb = b.simulate(pi);
      bool differs = false;
      for (std::size_t o = 0; o < a.outputs().size(); ++o) {
        differs |= ((va[a.outputs()[o]] ^ vb[b.outputs()[o]]) & 1ull) != 0;
      }
      EXPECT_TRUE(differs) << "seed " << seed;
    }
  }
}

TEST(SatCecFuzz, SessionAndOneshotBackendsAgreeOnEveryPair) {
  // The same pair sweep, session vs oneshot vs exhaustive simulation: all
  // three must return the same verdict on every seeded scenario.
  Rng rng(0xF023);
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SyntheticOptions opt;
    opt.inputs = 8 + static_cast<unsigned>(seed % 5);
    opt.outputs = 3 + static_cast<unsigned>(seed % 3);
    opt.gates = 60 + static_cast<unsigned>(seed * 7 % 60);
    opt.seed = seed;
    const Netlist a = make_synthetic(opt);
    Netlist b = make_synthetic(opt);
    const unsigned scenario = static_cast<unsigned>(seed % 3);
    if (scenario == 1) {
      if (!flip_random_gate(b, rng)) continue;
    } else if (scenario == 2) {
      SyntheticOptions other = opt;
      other.seed = seed + 1000;
      b = make_synthetic(other);
      if (b.inputs().size() != a.inputs().size() ||
          b.outputs().size() != a.outputs().size()) {
        continue;
      }
    }

    Rng ground_rng(seed);
    const EquivalenceResult truth = check_equivalent(a, b, ground_rng);
    ASSERT_TRUE(truth.proven) << "seed " << seed;

    const EquivalenceResult oneshot = check_equivalent_sat(a, b);
    SatSession session;
    const EquivalenceResult ses = check_equivalent_sat(session, a, b);
    ASSERT_TRUE(oneshot.proven) << "seed " << seed;
    ASSERT_TRUE(ses.proven) << "seed " << seed;
    EXPECT_EQ(oneshot.equivalent, truth.equivalent) << "seed " << seed;
    EXPECT_EQ(ses.equivalent, truth.equivalent) << "seed " << seed;
  }
}

/// Redundancy removal with the SAT fallback under one backend.
Netlist run_removal(const Netlist& base, SatBackend backend,
                    RedundancyRemovalStats* stats) {
  Netlist nl = base;
  RedundancyRemovalOptions opt;
  opt.sat_fallback = true;
  opt.backend = backend;
  // A tiny PODEM budget aborts many faults, forcing the SAT engines to
  // carry the untestability sweep -- the differential surface under test.
  opt.atpg.backtrack_limit = 4;
  *stats = remove_redundancies(nl, opt);
  return nl;
}

TEST(SatCecFuzz, RedundancyRemovalIsBackendInvariant) {
  // Full removal runs through both backends: identical final netlists (byte
  // compare of the .bench serialisation) and identical removal outcomes.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SyntheticOptions opt;
    opt.inputs = 8 + static_cast<unsigned>(seed % 4);
    opt.outputs = 3;
    opt.gates = 50 + static_cast<unsigned>(seed * 9 % 40);
    opt.seed = seed;
    opt.redundant_term_chance = 0.4;
    const Netlist base = make_synthetic(opt);

    RedundancyRemovalStats st_session, st_oneshot;
    const Netlist via_session = run_removal(base, SatBackend::Session, &st_session);
    const Netlist via_oneshot = run_removal(base, SatBackend::Oneshot, &st_oneshot);

    EXPECT_EQ(write_bench_string(via_session), write_bench_string(via_oneshot))
        << "seed " << seed;
    EXPECT_EQ(st_session.removed, st_oneshot.removed) << "seed " << seed;
    EXPECT_EQ(st_session.sat_proved_untestable, st_oneshot.sat_proved_untestable)
        << "seed " << seed;
    EXPECT_EQ(st_session.sat_found_tests, st_oneshot.sat_found_tests)
        << "seed " << seed;
    EXPECT_EQ(st_session.irredundant, st_oneshot.irredundant) << "seed " << seed;

    // And the removal preserved the function (exhaustive at these widths).
    Rng rng(seed);
    const EquivalenceResult eq = check_equivalent(base, via_session, rng);
    ASSERT_TRUE(eq.proven) << "seed " << seed;
    EXPECT_TRUE(eq.equivalent) << "seed " << seed;
  }
}

}  // namespace
}  // namespace compsyn
