// Tseitin encoder and CEC miter: the CNF model of every circuit must agree
// with 64-bit packed simulation on every node, the miter verdict must agree
// with exhaustive simulation on small generator circuits, and the SAT route
// must deliver real proofs past the exhaustive-simulation limit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "sat/cec.hpp"
#include "sat/solver.hpp"
#include "sat/tseitin.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// Solves the encoded circuit under unit assumptions pinning every primary
/// input, then checks the model of EVERY live node against simulation.
void check_model_against_sim(const Netlist& nl, Rng& rng, int trials) {
  Solver s;
  const CircuitEncoding enc = encode_circuit(nl, s);
  const unsigned n = static_cast<unsigned>(nl.inputs().size());
  std::vector<std::uint64_t> pi(n);
  std::vector<SatLit> assumptions(n);
  for (int t = 0; t < trials; ++t) {
    for (unsigned i = 0; i < n; ++i) {
      const bool bit = (rng.next() & 1) != 0;
      pi[i] = bit ? ~0ull : 0ull;
      assumptions[i] = enc.lit(nl.inputs()[i], /*negated=*/!bit);
    }
    ASSERT_EQ(s.solve(assumptions), SolveStatus::Sat) << nl.name();
    const std::vector<std::uint64_t> sim = nl.simulate(pi);
    for (NodeId node = 0; node < nl.size(); ++node) {
      if (!enc.has(node)) continue;
      const bool expect = (sim[node] & 1ull) != 0;
      EXPECT_EQ(s.model_value(enc.node_var[node]), expect)
          << nl.name() << " node " << node << " trial " << t;
    }
  }
}

TEST(SatCnf, EncoderMatchesSimulation) {
  Rng rng(0xC0FFEE);
  for (const char* name : {"c17", "s27"}) {
    check_model_against_sim(make_benchmark(name), rng, 16);
  }
  check_model_against_sim(make_parity_tree(9), rng, 16);   // XOR chain folding
  check_model_against_sim(make_alu_slice(3), rng, 16);     // XOR/XNOR mix
  check_model_against_sim(make_ripple_adder(4), rng, 16);
  check_model_against_sim(make_comparator(4), rng, 16);
  SyntheticOptions opt;
  opt.inputs = 10;
  opt.outputs = 5;
  opt.gates = 120;
  for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
    opt.seed = seed;
    check_model_against_sim(make_synthetic(opt), rng, 8);
  }
}

TEST(SatCnf, EncoderHandlesConstants) {
  Netlist nl("consts");
  const NodeId a = nl.add_input("a");
  const NodeId k0 = nl.add_const(false);
  const NodeId k1 = nl.add_const(true);
  const NodeId g = nl.add_gate(GateType::And, {a, k1});
  const NodeId h = nl.add_gate(GateType::Or, {g, k0});
  nl.mark_output(h);
  Solver s;
  const CircuitEncoding enc = encode_circuit(nl, s);
  ASSERT_EQ(s.solve({enc.lit(a)}), SolveStatus::Sat);
  EXPECT_TRUE(s.model_value(enc.node_var[h]));
  ASSERT_EQ(s.solve({enc.lit(a, /*negated=*/true)}), SolveStatus::Sat);
  EXPECT_FALSE(s.model_value(enc.node_var[h]));
}

TEST(SatCnf, MiterAgreesWithExhaustiveOnGeneratorCircuits) {
  // All suite circuits with at most 20 primary inputs: the SAT verdict must
  // match the exhaustive-simulation verdict both on the identical pair and
  // on a single-gate mutation.
  Rng rng(42);
  for (const BenchmarkEntry& entry : benchmark_suite()) {
    const Netlist a = make_benchmark(entry.name);
    if (a.inputs().size() > kDefaultExhaustiveLimit) continue;

    const EquivalenceResult sat_same = check_equivalent_sat(a, a);
    EXPECT_TRUE(sat_same.equivalent) << entry.name;
    EXPECT_TRUE(sat_same.proven) << entry.name;

    // Flip one gate's polarity; exhaustive simulation decides ground truth.
    Netlist b = make_benchmark(entry.name);
    bool mutated = false;
    for (NodeId n = 0; n < b.size() && !mutated; ++n) {
      const Node& node = b.node(n);
      if (b.is_dead(n)) continue;
      GateType flipped;
      switch (node.type) {
        case GateType::And: flipped = GateType::Nand; break;
        case GateType::Nand: flipped = GateType::And; break;
        case GateType::Or: flipped = GateType::Nor; break;
        case GateType::Nor: flipped = GateType::Or; break;
        case GateType::Xor: flipped = GateType::Xnor; break;
        case GateType::Xnor: flipped = GateType::Xor; break;
        default: continue;
      }
      b.redefine(n, flipped, node.fanins);
      mutated = true;
    }
    if (!mutated) continue;

    const EquivalenceResult sim = check_equivalent(a, b, rng);
    const EquivalenceResult sat = check_equivalent_sat(a, b);
    ASSERT_TRUE(sim.proven) << entry.name;  // <= 20 PIs: exhaustive
    EXPECT_TRUE(sat.proven) << entry.name;
    EXPECT_EQ(sat.equivalent, sim.equivalent) << entry.name;
  }
}

TEST(SatCnf, CounterexampleIsConcrete) {
  // NAND vs AND on two inputs: SAT must refute and the returned assignment
  // must actually distinguish the circuits under simulation.
  Netlist a("and2");
  {
    const NodeId x = a.add_input("x"), y = a.add_input("y");
    a.mark_output(a.add_gate(GateType::And, {x, y}));
  }
  Netlist b("nand2");
  {
    const NodeId x = b.add_input("x"), y = b.add_input("y");
    b.mark_output(b.add_gate(GateType::Nand, {x, y}));
  }
  const EquivalenceResult res = check_equivalent_sat(a, b);
  EXPECT_FALSE(res.equivalent);
  EXPECT_TRUE(res.proven);
  ASSERT_EQ(res.counterexample.size(), 2u);
  std::vector<std::uint64_t> pi(2);
  for (unsigned i = 0; i < 2; ++i) pi[i] = res.counterexample[i] ? ~0ull : 0ull;
  const auto va = a.simulate(pi);
  const auto vb = b.simulate(pi);
  EXPECT_NE(va[a.outputs()[0]] & 1ull, vb[b.outputs()[0]] & 1ull);
}

TEST(SatCnf, ProofBeyondExhaustiveLimit) {
  // 25 primary inputs: simulation cannot prove equivalence here, SAT can.
  const Netlist golden = make_ripple_adder(12);
  ASSERT_GT(golden.inputs().size(), kDefaultExhaustiveLimit);

  Rng rng(7);
  const EquivalenceResult sim = check_equivalent(golden, golden, rng);
  EXPECT_TRUE(sim.equivalent);
  EXPECT_FALSE(sim.proven);  // random vectors only

  const EquivalenceResult sat = check_equivalent_sat(golden, golden);
  EXPECT_TRUE(sat.equivalent);
  EXPECT_TRUE(sat.proven);

  // And the Both mode upgrades the unproven simulation verdict to a proof.
  const EquivalenceResult both =
      check_equivalent_mode(golden, golden, rng, VerifyMode::Both);
  EXPECT_TRUE(both.equivalent);
  EXPECT_TRUE(both.proven);
}

TEST(SatCnf, MiterRefutesWideInequivalence) {
  // A wide mutation that random simulation is unlikely to label equivalent,
  // but where SAT must return a definite refutation with a counterexample.
  const Netlist a = make_ripple_adder(12);
  Netlist b = make_ripple_adder(12);
  for (NodeId n = 0; n < b.size(); ++n) {
    if (!b.is_dead(n) && b.node(n).type == GateType::Xor) {
      b.redefine(n, GateType::Xnor, b.node(n).fanins);
      break;
    }
  }
  const EquivalenceResult res = check_equivalent_sat(a, b);
  EXPECT_FALSE(res.equivalent);
  EXPECT_TRUE(res.proven);
  ASSERT_EQ(res.counterexample.size(), a.inputs().size());
  std::vector<std::uint64_t> pi(a.inputs().size());
  for (std::size_t i = 0; i < pi.size(); ++i) {
    pi[i] = res.counterexample[i] ? ~0ull : 0ull;
  }
  const auto va = a.simulate(pi);
  const auto vb = b.simulate(pi);
  bool differs = false;
  for (std::size_t o = 0; o < a.outputs().size(); ++o) {
    differs |= ((va[a.outputs()[o]] ^ vb[b.outputs()[o]]) & 1ull) != 0;
  }
  EXPECT_TRUE(differs);
}

TEST(SatCnf, ParseVerifyMode) {
  EXPECT_EQ(parse_verify_mode("sim"), VerifyMode::Sim);
  EXPECT_EQ(parse_verify_mode("sat"), VerifyMode::Sat);
  EXPECT_EQ(parse_verify_mode("both"), VerifyMode::Both);
  EXPECT_FALSE(parse_verify_mode("exhaustive").has_value());
  EXPECT_FALSE(parse_verify_mode("").has_value());
}

}  // namespace
}  // namespace compsyn
