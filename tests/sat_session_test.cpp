// Persistent SAT session (sat/session.hpp) against the one-shot engines:
// encoding reuse, fault-proof and CEC verdict parity, the structural
// fast path, retirement soundness across interleaved queries, and the
// deterministic compaction rebuild.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "faults/fault.hpp"
#include "faults/fault_sim.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "sat/cec.hpp"
#include "sat/satpg.hpp"
#include "sat/session.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// Confirms the returned PI assignment actually detects the fault.
void expect_detects(const Netlist& nl, const StuckFault& f,
                    const std::vector<bool>& test) {
  ASSERT_EQ(test.size(), nl.inputs().size());
  FaultSimulator sim(nl, {f});
  std::vector<std::uint64_t> pi(nl.inputs().size());
  for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = test[i] ? ~0ull : 0ull;
  sim.simulate_block(pi, 0);
  EXPECT_TRUE(sim.is_detected(0)) << to_string(nl, f);
}

/// Every collapsed fault through ONE session vs the one-shot engine:
/// definitive verdicts must agree exactly, and tests must really detect.
void check_fault_parity(const Netlist& nl, std::size_t max_retired =
                                               SatSession::kDefaultMaxRetired) {
  SatSession session(max_retired);
  const auto id = session.add_circuit(nl);
  for (const StuckFault& f : enumerate_faults(nl)) {
    const SatFaultResult oneshot = prove_fault(nl, f);
    ASSERT_NE(oneshot.status, SatFaultStatus::Unknown)
        << nl.name() << " " << to_string(nl, f);
    const SatFaultResult ses = session.prove_fault(id, f);
    EXPECT_EQ(ses.status, oneshot.status)
        << nl.name() << " " << to_string(nl, f);
    if (ses.status == SatFaultStatus::Testable) {
      expect_detects(nl, f, ses.test);
    }
  }
}

TEST(SatSession, FaultParityOnC17) { check_fault_parity(make_c17()); }
TEST(SatSession, FaultParityOnParityTree) {
  check_fault_parity(make_parity_tree(6));
}
TEST(SatSession, FaultParityOnAluSlice) { check_fault_parity(make_alu_slice(2)); }

TEST(SatSession, FaultParityOnRedundantSynthetic) {
  SyntheticOptions opt;
  opt.inputs = 8;
  opt.outputs = 3;
  opt.gates = 50;
  opt.redundant_term_chance = 0.4;
  for (std::uint64_t seed : {3ull, 11ull, 19ull}) {
    opt.seed = seed;
    check_fault_parity(make_synthetic(opt));
  }
}

TEST(SatSession, CompactionPreservesVerdicts) {
  // A tiny retirement threshold forces many solver rebuilds mid-sweep; the
  // verdict stream must be identical to the never-compacting session's.
  const Netlist nl = make_alu_slice(2);
  check_fault_parity(nl, /*max_retired=*/2);
}

TEST(SatSession, AddCircuitReusesStructurallyIdenticalEncodings) {
  const Netlist a = make_c17();
  const Netlist b = make_c17();  // distinct object, identical structure
  SatSession session;
  const auto ia = session.add_circuit(a);
  const auto ib = session.add_circuit(b);
  EXPECT_EQ(ia, ib);
  EXPECT_EQ(session.num_circuits(), 1u);

  Netlist c = make_c17();
  c.set_name("renamed");  // names are not structure
  EXPECT_EQ(session.add_circuit(c), ia);

  const Netlist d = make_parity_tree(4);
  EXPECT_NE(session.add_circuit(d), ia);
  EXPECT_EQ(session.num_circuits(), 2u);
}

TEST(SatSession, StructuralFastPathProvesWithoutSolving) {
  const Netlist a = make_parity_tree(5);
  SatSession session;
  const auto id = session.add_circuit(a);
  const std::uint64_t conflicts_before = session.stats().conflicts;
  const EquivalenceResult eq = session.check_equivalent(id, id);
  EXPECT_TRUE(eq.equivalent);
  EXPECT_TRUE(eq.proven);
  EXPECT_EQ(session.stats().conflicts, conflicts_before);
  EXPECT_NE(eq.message.find("identical structure"), std::string::npos)
      << eq.message;
}

TEST(SatSession, CecParityWithOneshot) {
  Rng rng(0xABCD);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SyntheticOptions opt;
    opt.inputs = 8;
    opt.outputs = 3;
    opt.gates = 40 + static_cast<unsigned>(seed * 5);
    opt.seed = seed;
    const Netlist a = make_synthetic(opt);
    Netlist b = make_synthetic(opt);
    if (seed % 2 == 0) {
      // Perturb: redefine one gate with flipped polarity.
      for (NodeId n = 0; n < b.size(); ++n) {
        if (b.is_dead(n)) continue;
        if (b.node(n).type == GateType::And) {
          b.redefine(n, GateType::Nand, b.node(n).fanins);
          break;
        }
      }
    }
    const EquivalenceResult oneshot = check_equivalent_sat(a, b);
    ASSERT_TRUE(oneshot.proven) << "seed " << seed;
    SatSession session;
    const EquivalenceResult ses = session.check_equivalent(a, b);
    ASSERT_TRUE(ses.proven) << "seed " << seed;
    EXPECT_EQ(ses.equivalent, oneshot.equivalent) << "seed " << seed;
    if (!ses.equivalent) {
      // Counterexample sanity: must actually distinguish the circuits.
      std::vector<std::uint64_t> pi(a.inputs().size());
      for (std::size_t i = 0; i < pi.size(); ++i) {
        pi[i] = ses.counterexample[i] ? ~0ull : 0ull;
      }
      const auto va = a.simulate(pi);
      const auto vb = b.simulate(pi);
      bool differs = false;
      for (std::size_t o = 0; o < a.outputs().size(); ++o) {
        differs |= ((va[a.outputs()[o]] ^ vb[b.outputs()[o]]) & 1ull) != 0;
      }
      EXPECT_TRUE(differs) << "seed " << seed;
    }
  }
}

TEST(SatSession, RetirementKeepsLaterQueriesSound) {
  // Interleave fault proofs and CEC checks on one session, then repeat the
  // whole sequence: retired activation groups must not leak constraints into
  // later queries (every verdict is stable on the second lap).
  const Netlist nl = make_c17();
  Netlist other = make_c17();
  for (NodeId n = 0; n < other.size(); ++n) {
    if (other.is_dead(n)) continue;
    if (other.node(n).type == GateType::Nand) {
      other.redefine(n, GateType::And, other.node(n).fanins);
      break;
    }
  }
  SatSession session;
  const auto id = session.add_circuit(nl);
  const auto faults = enumerate_faults(nl);
  std::vector<SatFaultStatus> first;
  for (const StuckFault& f : faults) {
    first.push_back(session.prove_fault(id, f).status);
  }
  const EquivalenceResult eq1 = session.check_equivalent(nl, other);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(session.prove_fault(id, faults[i]).status, first[i])
        << to_string(nl, faults[i]);
  }
  const EquivalenceResult eq2 = session.check_equivalent(nl, other);
  EXPECT_EQ(eq1.equivalent, eq2.equivalent);
  EXPECT_EQ(eq1.proven, eq2.proven);
}

TEST(SatSession, BackendFlagParsesAndRoundTrips) {
  EXPECT_EQ(parse_sat_backend("session"), SatBackend::Session);
  EXPECT_EQ(parse_sat_backend("oneshot"), SatBackend::Oneshot);
  EXPECT_FALSE(parse_sat_backend("fresh").has_value());
  EXPECT_FALSE(parse_sat_backend("").has_value());
  const SatBackend saved = sat_backend();
  set_sat_backend(SatBackend::Oneshot);
  EXPECT_EQ(sat_backend(), SatBackend::Oneshot);
  EXPECT_STREQ(to_string(SatBackend::Oneshot), "oneshot");
  EXPECT_STREQ(to_string(SatBackend::Session), "session");
  set_sat_backend(saved);
}

#if COMPSYN_TRACE
TEST(SatSession, CountersRecordEncodingReuseAndQueries) {
  obs_set_enabled(true);
  Counters::reset();
  const Netlist a = make_c17();
  SatSession session;
  const auto id = session.add_circuit(a);
  session.add_circuit(make_c17());  // structural reuse
  const auto faults = enumerate_faults(a);
  session.prove_fault(id, faults.front());
  session.check_equivalent(id, id);
  EXPECT_EQ(Counters::value("sat.session.encoded"), 1u);
  EXPECT_EQ(Counters::value("sat.session.reuse_hits"), 1u);
  EXPECT_EQ(Counters::value("sat.session.queries"), 2u);
  EXPECT_EQ(Counters::value("sat.session.structural_proofs"), 1u);
  EXPECT_GE(Counters::value("sat.session.retired"), 1u);
  obs_set_enabled(false);
  Counters::reset();
}
#endif

}  // namespace
}  // namespace compsyn
