// CDCL solver correctness: hand-built formulas, the pigeonhole UNSAT family,
// random 3-SAT cross-checked against brute force, incremental solving under
// assumptions, and budget (Unknown) behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), SolveStatus::Sat);
}

TEST(SatSolver, UnitPropagationChain) {
  // x0, x0 -> x1, x1 -> x2: all three forced true.
  Solver s;
  const SatVar x0 = s.new_var(), x1 = s.new_var(), x2 = s.new_var();
  s.add_clause(mk_lit(x0));
  s.add_clause(~mk_lit(x0), mk_lit(x1));
  s.add_clause(~mk_lit(x1), mk_lit(x2));
  ASSERT_EQ(s.solve(), SolveStatus::Sat);
  EXPECT_TRUE(s.model_value(x0));
  EXPECT_TRUE(s.model_value(x1));
  EXPECT_TRUE(s.model_value(x2));
}

TEST(SatSolver, ImmediateContradiction) {
  Solver s;
  const SatVar x = s.new_var();
  s.add_clause(mk_lit(x));
  s.add_clause(~mk_lit(x));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.solve(), SolveStatus::Unsat);
}

TEST(SatSolver, TautologyAndDuplicatesAreHandled) {
  Solver s;
  const SatVar x = s.new_var(), y = s.new_var();
  // Tautology: dropped entirely (no constraint on x).
  s.add_clause(std::vector<SatLit>{mk_lit(x), ~mk_lit(x), mk_lit(y)});
  // Duplicate literals merge to a unit.
  s.add_clause(std::vector<SatLit>{mk_lit(y), mk_lit(y)});
  ASSERT_EQ(s.solve(), SolveStatus::Sat);
  EXPECT_TRUE(s.model_value(y));
}

/// Pigeonhole formula PHP(holes): holes+1 pigeons cannot each take a hole
/// exclusively -- classically UNSAT and exponential for resolution, so it
/// exercises conflict learning, restarts, and activity ordering hard.
void build_pigeonhole(Solver& s, unsigned holes) {
  const unsigned pigeons = holes + 1;
  std::vector<std::vector<SatVar>> v(pigeons, std::vector<SatVar>(holes));
  for (unsigned p = 0; p < pigeons; ++p) {
    for (unsigned h = 0; h < holes; ++h) v[p][h] = s.new_var();
  }
  for (unsigned p = 0; p < pigeons; ++p) {
    std::vector<SatLit> some;
    for (unsigned h = 0; h < holes; ++h) some.push_back(mk_lit(v[p][h]));
    s.add_clause(std::move(some));
  }
  for (unsigned h = 0; h < holes; ++h) {
    for (unsigned p1 = 0; p1 < pigeons; ++p1) {
      for (unsigned p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause(~mk_lit(v[p1][h]), ~mk_lit(v[p2][h]));
      }
    }
  }
}

TEST(SatSolver, PigeonholeFamilyIsUnsat) {
  for (unsigned holes = 2; holes <= 6; ++holes) {
    Solver s;
    build_pigeonhole(s, holes);
    EXPECT_EQ(s.solve(), SolveStatus::Unsat) << "PHP(" << holes << ")";
  }
}

TEST(SatSolver, PigeonholeMinusOnePigeonIsSat) {
  // With exactly `holes` pigeons an assignment exists; the model must
  // satisfy every clause (checked implicitly by the model probe below).
  Solver s;
  const unsigned holes = 5;
  std::vector<std::vector<SatVar>> v(holes, std::vector<SatVar>(holes));
  for (auto& row : v) {
    for (auto& var : row) var = s.new_var();
  }
  for (unsigned p = 0; p < holes; ++p) {
    std::vector<SatLit> some;
    for (unsigned h = 0; h < holes; ++h) some.push_back(mk_lit(v[p][h]));
    s.add_clause(std::move(some));
  }
  for (unsigned h = 0; h < holes; ++h) {
    for (unsigned p1 = 0; p1 < holes; ++p1) {
      for (unsigned p2 = p1 + 1; p2 < holes; ++p2) {
        s.add_clause(~mk_lit(v[p1][h]), ~mk_lit(v[p2][h]));
      }
    }
  }
  ASSERT_EQ(s.solve(), SolveStatus::Sat);
  for (unsigned h = 0; h < holes; ++h) {
    unsigned occupants = 0;
    for (unsigned p = 0; p < holes; ++p) occupants += s.model_value(v[p][h]);
    EXPECT_LE(occupants, 1u) << "hole " << h;
  }
}

/// Brute-force satisfiability of a clause set over n <= 20 variables.
bool brute_force_sat(const std::vector<std::vector<SatLit>>& clauses, unsigned n) {
  for (std::uint64_t m = 0; m < (1ull << n); ++m) {
    bool all = true;
    for (const auto& c : clauses) {
      bool sat = false;
      for (const SatLit l : c) {
        const bool val = ((m >> l.var()) & 1ull) != 0;
        if (val != l.negated()) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(SatSolver, Random3SatAgreesWithBruteForce) {
  Rng rng(0xDECAF);
  for (int trial = 0; trial < 60; ++trial) {
    const unsigned n = 5 + static_cast<unsigned>(rng.next() % 9);  // 5..13 vars
    // ~4.3 clauses/var sits at the hard sat/unsat threshold.
    const unsigned m = static_cast<unsigned>(4.3 * n) + 1;
    Solver s;
    for (unsigned i = 0; i < n; ++i) s.new_var();
    std::vector<std::vector<SatLit>> clauses;
    for (unsigned c = 0; c < m; ++c) {
      std::vector<SatLit> cl;
      for (int k = 0; k < 3; ++k) {
        cl.push_back(mk_lit(static_cast<SatVar>(rng.next() % n), rng.next() & 1));
      }
      clauses.push_back(cl);
      s.add_clause(std::move(cl));
    }
    const SolveStatus st = s.solve();
    const bool expected = brute_force_sat(clauses, n);
    ASSERT_EQ(st, expected ? SolveStatus::Sat : SolveStatus::Unsat)
        << "trial " << trial << " n=" << n << " m=" << m;
    if (st == SolveStatus::Sat) {
      // The model must satisfy every clause.
      for (const auto& c : clauses) {
        bool sat = false;
        for (const SatLit l : c) sat |= s.model_value(l.var()) != l.negated();
        EXPECT_TRUE(sat) << "trial " << trial;
      }
    }
  }
}

TEST(SatSolver, IncrementalAssumptions) {
  Solver s;
  const SatVar x = s.new_var(), y = s.new_var();
  s.add_clause(mk_lit(x), mk_lit(y));  // x | y
  // Assume ~x: y is forced.
  ASSERT_EQ(s.solve({~mk_lit(x)}), SolveStatus::Sat);
  EXPECT_FALSE(s.model_value(x));
  EXPECT_TRUE(s.model_value(y));
  // Assume ~x & ~y: unsatisfiable under assumptions only.
  EXPECT_EQ(s.solve({~mk_lit(x), ~mk_lit(y)}), SolveStatus::Unsat);
  // The solver itself is still consistent.
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.solve(), SolveStatus::Sat);
  // Assumptions can also re-visit the same variable positively.
  ASSERT_EQ(s.solve({mk_lit(x), ~mk_lit(y)}), SolveStatus::Sat);
  EXPECT_TRUE(s.model_value(x));
  EXPECT_FALSE(s.model_value(y));
}

TEST(SatSolver, AssumptionContradictingLevelZeroIsUnsat) {
  Solver s;
  const SatVar x = s.new_var();
  s.add_clause(mk_lit(x));
  EXPECT_EQ(s.solve({~mk_lit(x)}), SolveStatus::Unsat);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.solve(), SolveStatus::Sat);
}

TEST(SatSolver, ConflictBudgetYieldsUnknown) {
  Solver s;
  build_pigeonhole(s, 8);  // too hard for 10 conflicts
  const SolverBudget tiny{/*max_conflicts=*/10, /*max_propagations=*/0};
  EXPECT_EQ(s.solve({}, tiny), SolveStatus::Unknown);
  EXPECT_TRUE(s.ok());  // nothing was concluded; the instance stays open
}

TEST(SatSolver, StatsAccumulate) {
  Solver s;
  build_pigeonhole(s, 5);
  EXPECT_EQ(s.solve(), SolveStatus::Unsat);
  const SolverStats& st = s.stats();
  EXPECT_GT(st.conflicts, 0u);
  EXPECT_GT(st.decisions, 0u);
  EXPECT_GT(st.propagations, 0u);
  EXPECT_EQ(st.solves, 1u);
}

TEST(SatSolver, LubySequence) {
  const std::uint64_t expected[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (std::uint64_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(luby(i + 1), expected[i]) << "i=" << i + 1;
  }
}

}  // namespace
}  // namespace compsyn
