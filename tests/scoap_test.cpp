// SCOAP testability measures: hand-computed CC0/CC1/CO references on c17,
// the s27 combinational shell, and an XOR chain, plus structural properties
// (monotonicity, stem-vs-branch observability) on the generated benchmark
// suite. The hand values pin the exact Goldstein arithmetic -- every gate
// adds 1, side inputs are held non-controlling, stems take the branch min.
#include <gtest/gtest.h>

#include <algorithm>

#include "atpg/scoap.hpp"
#include "faults/fault.hpp"
#include "gen/circuits.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {
namespace {

/// ISCAS c17 (all NAND2), NodeIds captured for direct metric lookup.
struct C17 {
  Netlist nl{"c17"};
  NodeId i1, i2, i3, i6, i7;
  NodeId n10, n11, n16, n19, n22, n23;

  C17() {
    i1 = nl.add_input("1");
    i2 = nl.add_input("2");
    i3 = nl.add_input("3");
    i6 = nl.add_input("6");
    i7 = nl.add_input("7");
    n10 = nl.add_gate(GateType::Nand, {i1, i3});
    n11 = nl.add_gate(GateType::Nand, {i3, i6});
    n16 = nl.add_gate(GateType::Nand, {i2, n11});
    n19 = nl.add_gate(GateType::Nand, {n11, i7});
    n22 = nl.add_gate(GateType::Nand, {n10, n16});
    n23 = nl.add_gate(GateType::Nand, {n16, n19});
    nl.mark_output(n22);
    nl.mark_output(n23);
  }
};

/// ISCAS s27 combinational shell: state lines are pseudo-PIs/POs.
struct S27 {
  Netlist nl{"s27"};
  NodeId g0, g1, g2, g3, g5, g6, g7;
  NodeId g14, g8, g12, g15, g16, g9, g11, g10, g17, g13;

  S27() {
    g0 = nl.add_input("G0");
    g1 = nl.add_input("G1");
    g2 = nl.add_input("G2");
    g3 = nl.add_input("G3");
    g5 = nl.add_input("G5");
    g6 = nl.add_input("G6");
    g7 = nl.add_input("G7");
    g14 = nl.add_gate(GateType::Not, {g0});
    g12 = nl.add_gate(GateType::Nor, {g1, g7});
    g8 = nl.add_gate(GateType::And, {g14, g6});
    g15 = nl.add_gate(GateType::Or, {g12, g8});
    g16 = nl.add_gate(GateType::Or, {g3, g8});
    g9 = nl.add_gate(GateType::Nand, {g16, g15});
    g11 = nl.add_gate(GateType::Nor, {g5, g9});
    g10 = nl.add_gate(GateType::Nor, {g14, g11});
    g17 = nl.add_gate(GateType::Not, {g11});
    g13 = nl.add_gate(GateType::Nor, {g2, g12});
    nl.mark_output(g17);
    nl.mark_output(g10);
    nl.mark_output(g11);
    nl.mark_output(g13);
  }
};

TEST(Scoap, C17Controllability) {
  C17 c;
  const ScoapMetrics m = compute_scoap(c.nl);
  for (NodeId in : c.nl.inputs()) {
    EXPECT_EQ(m.cc0[in], 1u);
    EXPECT_EQ(m.cc1[in], 1u);
  }
  // NAND: cc1 = min fanin cc0 + 1, cc0 = sum fanin cc1 + 1.
  EXPECT_EQ(m.cc1[c.n10], 2u);
  EXPECT_EQ(m.cc0[c.n10], 3u);
  EXPECT_EQ(m.cc1[c.n11], 2u);
  EXPECT_EQ(m.cc0[c.n11], 3u);
  EXPECT_EQ(m.cc1[c.n16], 2u);
  EXPECT_EQ(m.cc0[c.n16], 4u);
  EXPECT_EQ(m.cc1[c.n19], 2u);
  EXPECT_EQ(m.cc0[c.n19], 4u);
  EXPECT_EQ(m.cc1[c.n22], 4u);
  EXPECT_EQ(m.cc0[c.n22], 5u);
  EXPECT_EQ(m.cc1[c.n23], 5u);
  EXPECT_EQ(m.cc0[c.n23], 5u);
}

TEST(Scoap, C17Observability) {
  C17 c;
  const ScoapMetrics m = compute_scoap(c.nl);
  EXPECT_EQ(m.co[c.n22], 0u);
  EXPECT_EQ(m.co[c.n23], 0u);
  EXPECT_EQ(m.co[c.n10], 3u);  // through 22, holding 16 at 1 (cc1=2)
  EXPECT_EQ(m.co[c.n16], 3u);  // both branches cost 3
  EXPECT_EQ(m.co[c.n19], 3u);
  EXPECT_EQ(m.co[c.n11], 5u);  // min over the 16- and 19-branches
  EXPECT_EQ(m.co[c.i1], 5u);
  EXPECT_EQ(m.co[c.i2], 6u);
  EXPECT_EQ(m.co[c.i3], 5u);  // the 10-branch beats the 11-branch (7)
  EXPECT_EQ(m.co[c.i6], 7u);
  EXPECT_EQ(m.co[c.i7], 6u);
  // The stem min is visible against the explicit branch costs.
  EXPECT_EQ(scoap_branch_co(c.nl, m, c.n10, 1), 5u);  // 3 via gate 10
  EXPECT_EQ(scoap_branch_co(c.nl, m, c.n11, 0), 7u);  // 3 via gate 11
}

TEST(Scoap, S27HandComputed) {
  S27 s;
  const ScoapMetrics m = compute_scoap(s.nl);
  EXPECT_EQ(m.cc0[s.g14], 2u);
  EXPECT_EQ(m.cc1[s.g14], 2u);
  EXPECT_EQ(m.cc1[s.g8], 4u);
  EXPECT_EQ(m.cc0[s.g8], 2u);
  EXPECT_EQ(m.cc1[s.g12], 3u);
  EXPECT_EQ(m.cc0[s.g12], 2u);
  EXPECT_EQ(m.cc1[s.g15], 4u);
  EXPECT_EQ(m.cc0[s.g15], 5u);
  EXPECT_EQ(m.cc1[s.g16], 2u);
  EXPECT_EQ(m.cc0[s.g16], 4u);
  EXPECT_EQ(m.cc0[s.g9], 7u);
  EXPECT_EQ(m.cc1[s.g9], 5u);
  EXPECT_EQ(m.cc1[s.g11], 9u);
  EXPECT_EQ(m.cc0[s.g11], 2u);
  EXPECT_EQ(m.cc1[s.g13], 4u);
  EXPECT_EQ(m.cc0[s.g13], 2u);
  EXPECT_EQ(m.cc1[s.g10], 5u);
  EXPECT_EQ(m.cc0[s.g10], 3u);
  EXPECT_EQ(m.cc0[s.g17], 10u);
  EXPECT_EQ(m.cc1[s.g17], 3u);

  EXPECT_EQ(m.co[s.g17], 0u);
  EXPECT_EQ(m.co[s.g10], 0u);
  EXPECT_EQ(m.co[s.g11], 0u);  // itself a PO; the G17/G10 branches cost more
  EXPECT_EQ(m.co[s.g13], 0u);
  EXPECT_EQ(m.co[s.g9], 2u);
  EXPECT_EQ(m.co[s.g14], 3u);  // via G10; the G8 branch costs 10
  EXPECT_EQ(m.co[s.g12], 2u);  // via G13; the G15 branch costs 8
  EXPECT_EQ(m.co[s.g15], 5u);
  EXPECT_EQ(m.co[s.g16], 7u);
  EXPECT_EQ(m.co[s.g8], 8u);  // both branches cost 8 and 9; min wins
  EXPECT_EQ(m.co[s.g0], 4u);
  EXPECT_EQ(m.co[s.g1], 4u);
  EXPECT_EQ(m.co[s.g2], 3u);
  EXPECT_EQ(m.co[s.g3], 10u);
  EXPECT_EQ(m.co[s.g5], 8u);
  EXPECT_EQ(m.co[s.g6], 11u);
  EXPECT_EQ(m.co[s.g7], 4u);
}

TEST(Scoap, XorChainParityCosts) {
  // x1 = a0^a1, x2 = x1^a2, x3 = x2^a3: stage k costs 2k+1 both ways, and
  // observability walks back up at min-cc (=1) per side input plus the gate.
  Netlist nl("xorchain");
  NodeId a0 = nl.add_input();
  NodeId a1 = nl.add_input();
  NodeId a2 = nl.add_input();
  NodeId a3 = nl.add_input();
  NodeId x1 = nl.add_gate(GateType::Xor, {a0, a1});
  NodeId x2 = nl.add_gate(GateType::Xor, {x1, a2});
  NodeId x3 = nl.add_gate(GateType::Xor, {x2, a3});
  nl.mark_output(x3);
  const ScoapMetrics m = compute_scoap(nl);
  EXPECT_EQ(m.cc0[x1], 3u);
  EXPECT_EQ(m.cc1[x1], 3u);
  EXPECT_EQ(m.cc0[x2], 5u);
  EXPECT_EQ(m.cc1[x2], 5u);
  EXPECT_EQ(m.cc0[x3], 7u);
  EXPECT_EQ(m.cc1[x3], 7u);
  EXPECT_EQ(m.co[x3], 0u);
  EXPECT_EQ(m.co[x2], 2u);
  EXPECT_EQ(m.co[x1], 4u);
  EXPECT_EQ(m.co[a0], 6u);
  EXPECT_EQ(m.co[a1], 6u);
  EXPECT_EQ(m.co[a2], 6u);
  EXPECT_EQ(m.co[a3], 6u);
}

TEST(Scoap, ConstantsSaturate) {
  // A constant's impossible side scores kScoapInf, and faults that need it
  // saturate to maximum hardness instead of overflowing.
  Netlist nl("const");
  NodeId a = nl.add_input();
  NodeId c0 = nl.add_const(false);
  NodeId g = nl.add_gate(GateType::Or, {a, c0});
  nl.mark_output(g);
  const ScoapMetrics m = compute_scoap(nl);
  EXPECT_EQ(m.cc0[c0], 0u);
  EXPECT_EQ(m.cc1[c0], kScoapInf);
  EXPECT_EQ(m.cc0[g], 2u);  // both fanins at 0: 1 + 0 + 1
  EXPECT_EQ(m.cc1[g], 2u);  // a=1 suffices
  EXPECT_EQ(m.co[a], 1u);   // hold the constant side at 0 for free
  EXPECT_EQ(m.co[c0], 2u);

  EXPECT_EQ(scoap_fault_hardness(nl, m, {c0, -1, true}), 2u);  // s-a-1: at 0 already
  EXPECT_EQ(scoap_fault_hardness(nl, m, {c0, -1, false}), kScoapInf);
  EXPECT_EQ(scoap_add(kScoapInf, kScoapInf), kScoapInf);
}

TEST(Scoap, FaultHardnessStemAndBranch) {
  C17 c;
  const ScoapMetrics m = compute_scoap(c.nl);
  // Stem s-a-0 on 22: drive to 1 (cc1=4) and observe at the PO (0).
  EXPECT_EQ(scoap_fault_hardness(c.nl, m, {c.n22, -1, false}), 4u);
  // Branch s-a-0 on pin 1 of gate 16 (the 11-input): drive 11 to 1 (cc1=2),
  // observe through 16 holding input 2 at 1 (3 + 1 + 1 = 5).
  EXPECT_EQ(scoap_fault_hardness(c.nl, m, {c.n16, 1, false}), 7u);
  // Branch hardness is never cheaper than the stem's.
  for (const StuckFault& f : enumerate_faults(c.nl, false)) {
    if (f.is_stem()) continue;
    const StuckFault stem{c.nl.node(f.node).fanins[f.pin], -1, f.value};
    EXPECT_GE(scoap_fault_hardness(c.nl, m, f),
              scoap_fault_hardness(c.nl, m, stem));
  }
}

TEST(Scoap, StemCoIsMinOverBranchCosOnBenchmarks) {
  for (const char* name : {"c17", "s27", "add8", "cmp8", "syn150"}) {
    Netlist nl = make_benchmark(name);
    const ScoapMetrics m = compute_scoap(nl);
    for (NodeId n : nl.topo_order()) {
      std::uint32_t expect = nl.node(n).is_output ? 0 : kScoapInf;
      bool consumed = nl.node(n).is_output;
      for (NodeId g : nl.topo_order()) {
        const auto& fi = nl.node(g).fanins;
        for (std::size_t p = 0; p < fi.size(); ++p) {
          if (fi[p] != n) continue;
          expect = std::min(expect, scoap_branch_co(nl, m, g, p));
          consumed = true;
        }
      }
      if (consumed) {
        EXPECT_EQ(m.co[n], expect) << name << " node " << n;
      }
    }
  }
}

TEST(Scoap, ControllabilityGrowsAlongLevels) {
  // Every live gate costs strictly more to control than its cheapest fanin:
  // the +1 per gate level makes min-cc strictly increasing along any path.
  for (const char* name : {"c17", "s27", "add8", "cmp8", "syn150"}) {
    Netlist nl = make_benchmark(name);
    const ScoapMetrics m = compute_scoap(nl);
    for (NodeId n : nl.topo_order()) {
      const Node& nd = nl.node(n);
      if (nd.fanins.empty()) continue;
      const std::uint32_t mine = std::min(m.cc0[n], m.cc1[n]);
      if (mine >= kScoapInf) continue;
      std::uint32_t cheapest = kScoapInf;
      for (NodeId f : nd.fanins) {
        cheapest = std::min(cheapest, std::min(m.cc0[f], m.cc1[f]));
      }
      EXPECT_GE(mine, cheapest + 1) << name << " node " << n;
    }
  }
}

TEST(Scoap, BranchCoExceedsGateCo) {
  for (const char* name : {"c17", "s27", "add8", "cmp8"}) {
    Netlist nl = make_benchmark(name);
    const ScoapMetrics m = compute_scoap(nl);
    for (NodeId g : nl.topo_order()) {
      const auto& fi = nl.node(g).fanins;
      for (std::size_t p = 0; p < fi.size(); ++p) {
        const std::uint32_t b = scoap_branch_co(nl, m, g, p);
        if (b >= kScoapInf) continue;
        EXPECT_GE(b, m.co[g] + 1) << name << " gate " << g << " pin " << p;
      }
    }
  }
}

TEST(Scoap, GuidanceBundle) {
  C17 c;
  const AtpgGuidance g = AtpgGuidance::build(c.nl);
  EXPECT_EQ(g.level, c.nl.levels());
  // Gate-distance to the nearest PO.
  EXPECT_EQ(g.out_dist[c.n22], 0u);
  EXPECT_EQ(g.out_dist[c.n23], 0u);
  EXPECT_EQ(g.out_dist[c.n16], 1u);
  EXPECT_EQ(g.out_dist[c.n10], 1u);
  EXPECT_EQ(g.out_dist[c.n11], 2u);
  EXPECT_EQ(g.out_dist[c.i1], 2u);
  EXPECT_EQ(g.out_dist[c.i6], 3u);
  // out_dist satisfies the one-step triangle rule everywhere.
  for (NodeId n : c.nl.topo_order()) {
    for (NodeId f : c.nl.node(n).fanins) {
      EXPECT_LE(g.out_dist[f], g.out_dist[n] + 1);
    }
  }
}

}  // namespace
}  // namespace compsyn
