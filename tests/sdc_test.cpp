#include <gtest/gtest.h>

#include "core/resynth.hpp"
#include "core/sdc.hpp"
#include "netlist/equivalence.hpp"
#include "paths/paths.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

TEST(Reachability, ComplementaryPairExcludesEqualCombos) {
  Netlist nl("r");
  NodeId a = nl.add_input();
  NodeId na = nl.add_gate(GateType::Not, {a});
  nl.mark_output(na);
  ReachabilityTable reach(nl);
  TruthTable combos = reach.reachable_combos({a, na});
  // (a, ~a) can only be 01 or 10.
  EXPECT_FALSE(combos.get(0b00));
  EXPECT_TRUE(combos.get(0b01));
  EXPECT_TRUE(combos.get(0b10));
  EXPECT_FALSE(combos.get(0b11));
}

TEST(Reachability, AndOrImplicationVisible) {
  // u = a AND b, v = a OR b: (u, v) = (1, 0) is unreachable.
  Netlist nl("uv");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId u = nl.add_gate(GateType::And, {a, b});
  NodeId v = nl.add_gate(GateType::Or, {a, b});
  nl.mark_output(u);
  nl.mark_output(v);
  ReachabilityTable reach(nl);
  TruthTable combos = reach.reachable_combos({u, v});
  EXPECT_TRUE(combos.get(0b00));
  EXPECT_TRUE(combos.get(0b01));
  EXPECT_FALSE(combos.get(0b10));
  EXPECT_TRUE(combos.get(0b11));
}

TEST(Reachability, IndependentInputsFullyReachable) {
  Netlist nl("ind");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId c = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, b, c});
  nl.mark_output(g);
  ReachabilityTable reach(nl);
  EXPECT_TRUE(reach.reachable_combos({a, b, c}).is_const_one());
}

TEST(Reachability, TooManyInputsRejected) {
  Netlist nl("big");
  std::vector<NodeId> ins;
  for (int i = 0; i < 18; ++i) ins.push_back(nl.add_input());
  nl.mark_output(nl.add_gate(GateType::And, ins));
  EXPECT_THROW(ReachabilityTable(nl, 16), std::invalid_argument);
}

TEST(Reachability, UnknownNodeConservative) {
  Netlist nl("u");
  NodeId a = nl.add_input();
  nl.mark_output(nl.add_gate(GateType::Not, {a}));
  ReachabilityTable reach(nl);
  NodeId later = nl.add_gate(GateType::Buf, {a});
  EXPECT_TRUE(reach.reachable_combos({a, later}).is_const_one());
}

TEST(IdentifyDc, DontCaresFillGaps) {
  // ON = {0, 3}: 0 maps to 0 under every permutation and 011 can never map
  // to 001, so no permutation makes the pair contiguous (nor the
  // complement) -- NOT a comparison function. With minterms {1, 2} as
  // don't-cares the window [0, 3] becomes valid.
  TruthTable f(3);
  f.set(0, true);
  f.set(3, true);
  TruthTable care = TruthTable::from_function(
      3, [](std::uint32_t m) { return m != 1 && m != 2; });
  // Plain identification must fail on the completed-with-0 function...
  EXPECT_TRUE(identify_comparison(f).empty());
  // ... while the DC-aware search succeeds.
  auto specs = identify_comparison_dc(f, care);
  ASSERT_FALSE(specs.empty());
  for (const auto& s : specs) {
    // Verify the spec agrees with f on every care minterm.
    const TruthTable impl = s.to_truth_table();
    for (std::uint32_t m = 0; m < 8; ++m) {
      if (care.get(m)) {
        EXPECT_EQ(impl.get(m), f.get(m)) << "minterm " << m;
      }
    }
  }
}

TEST(IdentifyDc, FullCareMatchesPlainEngine) {
  Rng rng(41);
  TruthTable care = TruthTable::from_function(4, [](std::uint32_t) { return true; });
  int agreements = 0;
  for (int trial = 0; trial < 100; ++trial) {
    TruthTable f = TruthTable::from_function(4, [&](std::uint32_t) { return rng.flip(); });
    if (f.is_const_zero() || f.is_const_one()) continue;
    const bool plain = !identify_comparison(f).empty();
    IdentifyOptions opt;
    opt.sample_tries = 200;
    opt.rng = &rng;
    const bool with_dc = !identify_comparison_dc(f, care, opt).empty();
    // The sampled DC engine may miss (it is a heuristic) but must never
    // find a spec for something the exact engine proves impossible.
    if (with_dc) {
      EXPECT_TRUE(plain) << f.to_bits();
    }
    agreements += plain == with_dc;
  }
  EXPECT_GT(agreements, 80);
}

TEST(IdentifyDc, SpecsAlwaysSoundOnRandomIsfs) {
  Rng rng(43);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned n = 3 + trial % 2;
    TruthTable f = TruthTable::from_function(n, [&](std::uint32_t) { return rng.flip(); });
    TruthTable care = TruthTable::from_function(
        n, [&](std::uint32_t) { return rng.chance(3, 4); });
    for (const auto& s : identify_comparison_dc(f, care)) {
      const TruthTable impl = s.to_truth_table();
      for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
        if (care.get(m)) {
          ASSERT_EQ(impl.get(m), f.get(m))
              << "f=" << f.to_bits() << " care=" << care.to_bits() << " m=" << m;
        }
      }
    }
  }
}

TEST(SdcResynthesis, PreservesCircuitFunction) {
  // The critical safety property: SDC-based rewrites may change cone
  // functions on unreachable combinations only, so the circuit function as
  // seen from the primary inputs must be exactly preserved.
  Rng gen(91);
  for (int trial = 0; trial < 10; ++trial) {
    Netlist nl("s");
    std::vector<NodeId> pool;
    for (int i = 0; i < 8; ++i) pool.push_back(nl.add_input());
    const GateType kinds[] = {GateType::And, GateType::Or, GateType::Nand,
                              GateType::Nor, GateType::Not, GateType::Xor};
    for (int i = 0; i < 30; ++i) {
      const GateType t = kinds[gen.below(6)];
      const unsigned arity = t == GateType::Not ? 1 : 2 + gen.below(2);
      std::vector<NodeId> fi;
      for (unsigned j = 0; j < arity; ++j) fi.push_back(pool[gen.below(pool.size())]);
      pool.push_back(nl.add_gate(t, fi));
    }
    nl.mark_output(pool.back());
    nl.mark_output(pool[pool.size() - 2]);
    nl.sweep();
    Netlist ref = nl.compacted();
    ResynthOptions opt;
    opt.k = 5;
    opt.use_sdc = true;
    resynthesize(nl, opt);
    Rng rng(trial);
    auto res = check_equivalent(nl, ref, rng);
    ASSERT_TRUE(res.equivalent) << "trial " << trial << ": " << res.message;
    ASSERT_TRUE(res.exhaustive);
  }
}

TEST(SdcResynthesis, CorrelatedConesNeverWorseThanPlain) {
  // Strongly correlated cone leaves: u = AND(a,b), v = OR(a,b),
  // w = XOR(a,b). Only the (u,v,w) combinations {000, 011, 110} are
  // reachable, so the don't-care engine sees windows the plain engine
  // cannot. (Plain cone absorption can often re-express the same cone over
  // the independent signals, so strict improvement is not guaranteed at
  // circuit level -- see IdentifyDc.DontCaresFillGaps for the strict
  // identification-level win; here we require soundness and no regression.)
  // a and b themselves come from wider disjoint logic so that cones at the
  // output cannot absorb past (u, v, w) with K = 3 (the full-support cone
  // would need 4 leaves).
  Netlist nl("corr");
  NodeId p = nl.add_input();
  NodeId q = nl.add_input();
  NodeId r = nl.add_input();
  NodeId s = nl.add_input();
  NodeId a = nl.add_gate(GateType::And, {p, q});
  NodeId b = nl.add_gate(GateType::Or, {r, s});
  NodeId u = nl.add_gate(GateType::And, {a, b});
  NodeId v = nl.add_gate(GateType::Or, {a, b});
  NodeId w = nl.add_gate(GateType::Xor, {a, b});
  NodeId nu = nl.add_gate(GateType::Not, {u});
  NodeId nw = nl.add_gate(GateType::Not, {w});
  // f = ~u v w + u v ~w  (minterms 3 and 6 of (u,v,w)).
  NodeId t1 = nl.add_gate(GateType::And, {nu, v, w});
  NodeId t2 = nl.add_gate(GateType::And, {u, v, nw});
  NodeId f = nl.add_gate(GateType::Or, {t1, t2});
  nl.mark_output(f);
  Netlist ref = nl.compacted();

  Netlist plain = nl.compacted();
  ResynthOptions popt;
  popt.objective = ResynthObjective::Gates;
  popt.k = 3;
  resynthesize(plain, popt);

  ResynthOptions opt;
  opt.objective = ResynthObjective::Gates;
  opt.k = 3;
  opt.use_sdc = true;
  resynthesize(nl, opt);
  Rng rng(7);
  auto res = check_equivalent(nl, ref, rng);
  EXPECT_TRUE(res.equivalent) << res.message;
  EXPECT_TRUE(res.exhaustive);
  // The don't-care engine only ADDS candidate windows, so it never loses.
  EXPECT_LE(nl.equivalent_gate_count(), plain.equivalent_gate_count());
}

}  // namespace
}  // namespace compsyn
