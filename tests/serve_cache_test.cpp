// ResultCache unit tests: exact-confirm hits, option-key separation,
// deterministic LRU eviction under a byte budget, refresh-in-place, the
// oversized-entry drop, and the disabled (0-byte) cache.
#include <gtest/gtest.h>

#include <string>

#include "serve/cache.hpp"

namespace compsyn::serve {
namespace {

CachedResult result_named(const std::string& tag, std::size_t pad = 0) {
  CachedResult r;
  r.status = "ok";
  r.bench = "# " + tag + "\n" + std::string(pad, 'b');
  Json rep = Json::object();
  rep.set("name", "resynth_flow");
  rep.set("tag", tag);
  r.report = rep;
  r.stdout_text = "stdout of " + tag + "\n";
  return r;
}

TEST(ServeCache, MissThenInsertThenHitReturnsStoredArtifacts) {
  ResultCache cache(1 << 20);
  CachedResult out;
  EXPECT_FALSE(cache.lookup("bench-a", "opts-1", &out));
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert("bench-a", "opts-1", result_named("a"));
  ASSERT_TRUE(cache.lookup("bench-a", "opts-1", &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(out.status, "ok");
  EXPECT_EQ(out.bench, result_named("a").bench);
  EXPECT_EQ(out.report.dump(), result_named("a").report.dump());
  EXPECT_EQ(out.stdout_text, "stdout of a\n");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), 0u);
}

TEST(ServeCache, OptionKeySeparatesEntriesForTheSameCircuit) {
  ResultCache cache(1 << 20);
  cache.insert("bench-a", "k=5", result_named("k5"));
  cache.insert("bench-a", "k=6", result_named("k6"));
  EXPECT_EQ(cache.entries(), 2u);
  CachedResult out;
  ASSERT_TRUE(cache.lookup("bench-a", "k=5", &out));
  EXPECT_EQ(out.stdout_text, "stdout of k5\n");
  ASSERT_TRUE(cache.lookup("bench-a", "k=6", &out));
  EXPECT_EQ(out.stdout_text, "stdout of k6\n");
  EXPECT_FALSE(cache.lookup("bench-a", "k=7", nullptr));
}

TEST(ServeCache, LruEvictionIsOrderedByLastTouch) {
  // Size entries so three fit but a fourth forces one eviction.
  ResultCache cache(3 * 1500);
  cache.insert("A", "o", result_named("A", 1000));
  cache.insert("B", "o", result_named("B", 1000));
  cache.insert("C", "o", result_named("C", 1000));
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);
  // Touch A so B becomes least-recently-used, then overflow.
  ASSERT_TRUE(cache.lookup("A", "o", nullptr));
  cache.insert("D", "o", result_named("D", 1000));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.lookup("A", "o", nullptr));   // kept: recently touched
  EXPECT_FALSE(cache.lookup("B", "o", nullptr));  // evicted: oldest touch
  EXPECT_TRUE(cache.lookup("C", "o", nullptr));
  EXPECT_TRUE(cache.lookup("D", "o", nullptr));
  EXPECT_LE(cache.bytes(), cache.max_bytes());
}

TEST(ServeCache, RefreshInPlaceDoesNotDuplicate) {
  ResultCache cache(1 << 20);
  cache.insert("A", "o", result_named("v1"));
  cache.insert("A", "o", result_named("v2", 500));
  EXPECT_EQ(cache.entries(), 1u);
  CachedResult out;
  ASSERT_TRUE(cache.lookup("A", "o", &out));
  EXPECT_EQ(out.stdout_text, "stdout of v2\n");
}

TEST(ServeCache, EntryLargerThanBudgetIsDropped) {
  ResultCache cache(256);
  cache.insert("A", "o", result_named("big", 10000));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_FALSE(cache.lookup("A", "o", nullptr));
}

TEST(ServeCache, ZeroBudgetDisablesCaching) {
  ResultCache cache(0);
  cache.insert("A", "o", result_named("a"));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.lookup("A", "o", nullptr));
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ServeCache, KeyOfMixesBenchAndOptions) {
  const std::uint64_t k = ResultCache::key_of("bench", "opts");
  EXPECT_NE(k, ResultCache::key_of("bench", "opts2"));
  EXPECT_NE(k, ResultCache::key_of("bench2", "opts"));
  EXPECT_EQ(k, ResultCache::key_of("bench", "opts"));
}

}  // namespace
}  // namespace compsyn::serve
