// End-to-end tests of the resynth_serve daemon and resynth_client, driven
// as subprocesses (binary paths injected by CMake).
//
// The load-bearing property is the determinism contract (DESIGN.md §13.2):
// every artifact a job returns -- resynthesized .bench, run report, stdout
// -- is byte-identical to a fresh one-shot `resynth_flow` run with the same
// flags (reports compared after masking only the wall-clock fields), at
// client concurrency 1 and 4, cache cold and hot. On top of that: protocol
// robustness (truncated frames, oversized prefixes, malformed payloads,
// mid-job disconnects never kill the daemon), the SIGTERM drain (exit 143,
// queued jobs answered, socket unlinked), and the stdio transport.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/json.hpp"
#include "report_mask.hpp"
#include "serve/protocol.hpp"

namespace compsyn::serve {
namespace {

#ifndef RESYNTH_SERVE_PATH
#error "RESYNTH_SERVE_PATH must be defined by the build"
#endif
#ifndef RESYNTH_CLIENT_PATH
#error "RESYNTH_CLIENT_PATH must be defined by the build"
#endif
#ifndef RESYNTH_FLOW_PATH
#error "RESYNTH_FLOW_PATH must be defined by the build"
#endif

std::string temp_path(const std::string& leaf) {
  return testing::TempDir() + "compsyn_serve_" + leaf;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << text;
  ASSERT_TRUE(os.good()) << path;
}

bool path_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

bool wait_for(const std::function<bool()>& pred, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

/// Runs a foreground command, returning its exit code with stdout/stderr
/// captured to strings.
struct RunResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

RunResult run_cmd(const std::string& cmd_line) {
  static int serial = 0;
  const std::string out_path = temp_path("cmd_out" + std::to_string(serial));
  const std::string err_path = temp_path("cmd_err" + std::to_string(serial));
  ++serial;
  const std::string cmd = cmd_line + " >" + out_path + " 2>" + err_path;
  const int raw = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  r.out = slurp(out_path);
  r.err = slurp(err_path);
  std::remove(out_path.c_str());
  std::remove(err_path.c_str());
  return r;
}

/// A resynth_serve daemon as a background subprocess. The shell wrapper
/// records the daemon's pid and, after it exits, its real exit code.
struct Daemon {
  std::string tag;
  std::string socket_path;
  std::string events_path;
  std::string pid_path;
  std::string rc_path;
  std::string err_path;
  pid_t pid = -1;

  explicit Daemon(const std::string& t) : tag(t) {
    socket_path = temp_path(tag + ".sock");
    events_path = temp_path(tag + ".events.jsonl");
    pid_path = temp_path(tag + ".pid");
    rc_path = temp_path(tag + ".rc");
    err_path = temp_path(tag + ".err");
    std::remove(socket_path.c_str());
    std::remove(pid_path.c_str());
    std::remove(rc_path.c_str());
  }

  void start(const std::string& extra_flags = "") {
    const std::string cmd = "( " + std::string(RESYNTH_SERVE_PATH) +
                            " --socket=" + socket_path +
                            " --events=" + events_path + " " + extra_flags +
                            " 2>" + err_path + " & echo $! > " + pid_path +
                            "; wait $!; echo $? > " + rc_path + " ) &";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    ASSERT_TRUE(wait_for([&] { return path_exists(socket_path); }, 10000))
        << "daemon did not come up; stderr: " << slurp(err_path);
    ASSERT_TRUE(wait_for([&] { return !slurp(pid_path).empty(); }, 5000));
    pid = static_cast<pid_t>(std::stol(slurp(pid_path)));
  }

  /// Blocks until the shell wrapper records the daemon's exit code.
  int wait_exit(int timeout_ms = 60000) {
    if (!wait_for([&] { return !slurp(rc_path).empty(); }, timeout_ms)) {
      return -1;
    }
    return std::stoi(slurp(rc_path));
  }
};

/// A raw protocol connection to a daemon socket.
struct Conn {
  int fd = -1;
  ~Conn() { close(); }
  void close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  bool connect(const std::string& path) {
    sockaddr_un addr{};
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }
  bool send(const Json& msg) {
    std::string err;
    return write_message(fd, msg, &err);
  }
  /// Reads one frame and parses it; nullopt on EOF/error.
  std::optional<Json> recv(std::string* status_text = nullptr) {
    std::string payload, err;
    const FrameStatus st = read_frame(fd, &payload, &err);
    if (st != FrameStatus::Ok) {
      if (status_text != nullptr) {
        *status_text = "frame status " + std::to_string(static_cast<int>(st)) +
                       ": " + err;
      }
      return std::nullopt;
    }
    return Json::parse(payload, status_text);
  }
};

Json job_message(const std::string& id, const std::string& circuit,
                 unsigned k = 5, const std::string& proc = "2") {
  JobSpec spec;
  spec.id = id;
  spec.circuit = circuit;
  spec.proc = proc;
  spec.k = k;
  return spec.to_json();
}

std::string field(const Json& j, const char* key) {
  const Json* f = j.find(key);
  return f != nullptr && f->type() == Json::Type::String ? f->as_string() : "";
}

/// One-shot resynth_flow artifacts for a (circuit, proc, k) triple: bench
/// bytes, report JSON, and stdout with the nondeterministic-path "wrote "
/// line removed (the daemon has no --out flag, so its captured stdout ends
/// at the verification verdict).
struct OneShot {
  std::string bench;
  Json report;
  std::string stdout_text;
};

OneShot one_shot(const std::string& circuit, unsigned k,
                 const std::string& proc = "2") {
  static int serial = 0;
  const std::string bench_path = temp_path("os" + std::to_string(serial) +
                                           ".bench");
  const std::string report_path = temp_path("os" + std::to_string(serial) +
                                            ".json");
  ++serial;
  const RunResult r = run_cmd(std::string(RESYNTH_FLOW_PATH) + " --proc=" +
                              proc + " --k=" + std::to_string(k) + " --out=" +
                              bench_path + " --report=" + report_path + " " +
                              circuit);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  OneShot os;
  os.bench = slurp(bench_path);
  std::string err;
  const std::optional<Json> rep = Json::parse(slurp(report_path), &err);
  EXPECT_TRUE(rep.has_value()) << err;
  if (rep.has_value()) os.report = *rep;
  // Drop the "wrote <path>" line --out appends.
  std::istringstream is(r.out);
  std::ostringstream kept;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("wrote ", 0) != 0) kept << line << "\n";
  }
  os.stdout_text = kept.str();
  std::remove(bench_path.c_str());
  std::remove(report_path.c_str());
  return os;
}

/// Asserts a daemon-produced (bench, report, stdout) triple is
/// byte-identical to the one-shot run (report masked for wall-clock only).
void expect_matches_one_shot(const OneShot& expect, const std::string& bench,
                             const Json& report, const std::string& stdout_text,
                             const std::string& what) {
  EXPECT_EQ(bench, expect.bench) << what << ": .bench differs";
  EXPECT_EQ(stdout_text, expect.stdout_text) << what << ": stdout differs";
  EXPECT_EQ(label_ordered_spans(masked_report_dump(report)),
            label_ordered_spans(masked_report_dump(expect.report)))
      << what << ": masked report differs";
}

TEST(ServeE2e, PingStatsShutdownLifecycle) {
  Daemon d("lifecycle");
  d.start();
  Conn c;
  ASSERT_TRUE(c.connect(d.socket_path));
  Json ping = Json::object();
  ping.set("type", "ping");
  ASSERT_TRUE(c.send(ping));
  std::optional<Json> reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "type"), "pong");
  EXPECT_EQ(field(*reply, "schema"), kServeSchema);

  Json stats = Json::object();
  stats.set("type", "stats");
  ASSERT_TRUE(c.send(stats));
  reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "type"), "stats");
  ASSERT_NE(reply->find("jobs_received"), nullptr);
  EXPECT_EQ(reply->find("jobs_received")->as_u64(), 0u);

  Json bye = Json::object();
  bye.set("type", "shutdown");
  ASSERT_TRUE(c.send(bye));
  reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "type"), "bye");
  EXPECT_EQ(d.wait_exit(), 0);
  EXPECT_FALSE(path_exists(d.socket_path)) << "socket file not unlinked";
  // Event log closed with a clean finish record.
  const std::string events = slurp(d.events_path);
  EXPECT_NE(events.find("\"type\":\"finish\""), std::string::npos);
  EXPECT_NE(events.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ServeE2e, DeterminismAcrossConcurrencyAndCacheState) {
  const std::vector<std::string> circuits = {"c17", "s27", "add8"};
  const unsigned k = 5;

  Daemon d("determinism");
  d.start();

  // Manifest: the three circuits; replayed twice so round 0 is cache-cold
  // and round 1 is cache-hot, at client concurrency 4.
  Json jobs = Json::array();
  for (const std::string& c : circuits) {
    Json j = Json::object();
    j.set("id", c);
    j.set("circuit", c);
    j.set("proc", "2");
    j.set("k", std::uint64_t{k});
    jobs.push(std::move(j));
  }
  Json manifest = Json::object();
  manifest.set("jobs", std::move(jobs));
  const std::string manifest_path = temp_path("det_manifest.json");
  spit(manifest_path, manifest.dump(2));

  const std::string dir4 = temp_path("det_out4");
  const std::string dir1 = temp_path("det_out1");
  ASSERT_EQ(std::system(("mkdir -p " + dir4 + " " + dir1).c_str()), 0);

  RunResult replay = run_cmd(std::string(RESYNTH_CLIENT_PATH) + " --socket=" +
                             d.socket_path + " --manifest=" + manifest_path +
                             " --concurrency=4 --rounds=2 --out-dir=" + dir4);
  EXPECT_EQ(replay.exit_code, 0) << replay.err;
  EXPECT_NE(replay.out.find("replayed 6 job(s)"), std::string::npos)
      << replay.out;

  // Concurrency 1 against the now-hot cache.
  replay = run_cmd(std::string(RESYNTH_CLIENT_PATH) + " --socket=" +
                   d.socket_path + " --manifest=" + manifest_path +
                   " --concurrency=1 --out-dir=" + dir1);
  EXPECT_EQ(replay.exit_code, 0) << replay.err;

  for (const std::string& c : circuits) {
    const OneShot expect = one_shot(c, k);
    for (const std::string& base :
         {dir4 + "/" + c + ".r0", dir4 + "/" + c + ".r1", dir1 + "/" + c}) {
      std::string err;
      const std::optional<Json> rep =
          Json::parse(slurp(base + ".report.json"), &err);
      ASSERT_TRUE(rep.has_value()) << base << ": " << err;
      expect_matches_one_shot(expect, slurp(base + ".bench"), *rep,
                              slurp(base + ".stdout.txt"), base);
    }
  }

  // Round 1 and the concurrency-1 replay must all have been cache hits.
  Conn c;
  ASSERT_TRUE(c.connect(d.socket_path));
  Json stats = Json::object();
  stats.set("type", "stats");
  ASSERT_TRUE(c.send(stats));
  const std::optional<Json> reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->find("jobs_executed")->as_u64(), circuits.size());
  EXPECT_EQ(reply->find("cache_hits")->as_u64(), 2 * circuits.size());

  Json bye = Json::object();
  bye.set("type", "shutdown");
  ASSERT_TRUE(c.send(bye));
  c.recv();
  EXPECT_EQ(d.wait_exit(), 0);
}

TEST(ServeE2e, SingleJobClientMatchesOneShot) {
  Daemon d("single");
  d.start();
  const std::string bench_path = temp_path("single.bench");
  const std::string report_path = temp_path("single.json");
  const RunResult r = run_cmd(std::string(RESYNTH_CLIENT_PATH) + " --socket=" +
                              d.socket_path + " --proc=2 --k=5 --out=" +
                              bench_path + " --report=" + report_path +
                              " mux4");
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const OneShot expect = one_shot("mux4", 5);
  EXPECT_EQ(slurp(bench_path), expect.bench);
  // The client's stdout = daemon stdout + its own "wrote" line; strip it
  // the same way one_shot strips the flow's.
  std::istringstream is(r.out);
  std::ostringstream kept;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("wrote ", 0) != 0) kept << line << "\n";
  }
  EXPECT_EQ(kept.str(), expect.stdout_text);
  // Report files must be byte-identical after masking -- the client
  // replicates RunReport::write's formatting exactly.
  std::string err;
  const std::optional<Json> rep = Json::parse(slurp(report_path), &err);
  ASSERT_TRUE(rep.has_value()) << err;
  EXPECT_EQ(label_ordered_spans(masked_report_dump(*rep)),
            label_ordered_spans(masked_report_dump(expect.report)));

  run_cmd(std::string(RESYNTH_CLIENT_PATH) + " --socket=" + d.socket_path +
          " --shutdown");
  EXPECT_EQ(d.wait_exit(), 0);
}

TEST(ServeE2e, MalformedBenchYieldsPerJobErrorAndDaemonSurvives) {
  Daemon d("malformed");
  d.start();
  Conn c;
  ASSERT_TRUE(c.connect(d.socket_path));

  JobSpec bad;
  bad.id = "bad1";
  bad.circuit = "garbage.bench";
  bad.bench = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
  ASSERT_TRUE(c.send(bad.to_json()));
  std::optional<Json> reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "type"), "result");
  EXPECT_EQ(field(*reply, "id"), "bad1");
  EXPECT_EQ(field(*reply, "status"), "error");
  EXPECT_FALSE(field(*reply, "error").empty());
  // The error report carries the guard-shaped status/error meta.
  const Json* rep = reply->find("report");
  ASSERT_NE(rep, nullptr);
  ASSERT_NE(rep->find("meta"), nullptr);
  EXPECT_EQ(field(*rep->find("meta"), "status"), "error");

  // Unknown circuit name: also a per-job error.
  ASSERT_TRUE(c.send(job_message("bad2", "no_such_circuit")));
  reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "status"), "error");

  // The same connection still serves valid work.
  ASSERT_TRUE(c.send(job_message("good", "c17")));
  reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "status"), "ok");
  EXPECT_FALSE(field(*reply, "bench").empty());

  Json bye = Json::object();
  bye.set("type", "shutdown");
  ASSERT_TRUE(c.send(bye));
  c.recv();
  EXPECT_EQ(d.wait_exit(), 0);
}

TEST(ServeE2e, ProtocolErrorsDropTheConnectionNotTheDaemon) {
  Daemon d("protocol");
  d.start();

  {
    // Oversized length prefix: error reply, then the connection is dropped.
    Conn c;
    ASSERT_TRUE(c.connect(d.socket_path));
    const char huge[4] = {'\x7f', '\xff', '\xff', '\xff'};
    ASSERT_EQ(::write(c.fd, huge, 4), 4);
    std::optional<Json> reply = c.recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(field(*reply, "type"), "error");
    EXPECT_NE(field(*reply, "error").find("exceeds"), std::string::npos);
    EXPECT_FALSE(c.recv().has_value()) << "connection should be closed";
  }
  {
    // Truncated frame: announce 64 bytes, send 8, half-close.
    Conn c;
    ASSERT_TRUE(c.connect(d.socket_path));
    const char head[4] = {0, 0, 0, 64};
    ASSERT_EQ(::write(c.fd, head, 4), 4);
    ASSERT_EQ(::write(c.fd, "partial!", 8), 8);
    ASSERT_EQ(::shutdown(c.fd, SHUT_WR), 0);
    std::optional<Json> reply = c.recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(field(*reply, "type"), "error");
    EXPECT_NE(field(*reply, "error").find("ended inside"), std::string::npos);
  }
  {
    // Malformed JSON payload: recoverable -- same connection keeps working.
    Conn c;
    ASSERT_TRUE(c.connect(d.socket_path));
    std::string err;
    ASSERT_TRUE(write_frame(c.fd, "this is not json", &err));
    std::optional<Json> reply = c.recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(field(*reply, "type"), "error");
    Json ping = Json::object();
    ping.set("type", "ping");
    ASSERT_TRUE(c.send(ping));
    reply = c.recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(field(*reply, "type"), "pong");
  }
  // After all that abuse the daemon still executes jobs.
  Conn c;
  ASSERT_TRUE(c.connect(d.socket_path));
  ASSERT_TRUE(c.send(job_message("after", "c17")));
  const std::optional<Json> reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "status"), "ok");

  Json bye = Json::object();
  bye.set("type", "shutdown");
  ASSERT_TRUE(c.send(bye));
  c.recv();
  EXPECT_EQ(d.wait_exit(), 0);
}

TEST(ServeE2e, MidJobClientDisconnectIsAPerJobFailure) {
  Daemon d("disconnect");
  d.start();
  {
    Conn doomed;
    ASSERT_TRUE(doomed.connect(d.socket_path));
    ASSERT_TRUE(doomed.send(job_message("gone", "add8")));
    doomed.close();  // vanish before the result can be written
  }
  Conn c;
  ASSERT_TRUE(c.connect(d.socket_path));
  ASSERT_TRUE(c.send(job_message("alive", "add8")));
  const std::optional<Json> reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "status"), "ok");

  Json bye = Json::object();
  bye.set("type", "shutdown");
  ASSERT_TRUE(c.send(bye));
  c.recv();
  EXPECT_EQ(d.wait_exit(), 0);
}

TEST(ServeE2e, SigtermDrainsWithExit143AndUnlinkedSocket) {
  Daemon d("sigterm");
  d.start();
  Conn c;
  ASSERT_TRUE(c.connect(d.socket_path));
  // One long job in flight plus queued work behind it.
  ASSERT_TRUE(c.send(job_message("long", "syn150", /*k=*/6)));
  ASSERT_TRUE(c.send(job_message("q1", "add8")));
  ASSERT_TRUE(c.send(job_message("q2", "mux4")));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(::kill(d.pid, SIGTERM), 0);

  // Every submitted job is answered -- the in-flight one after winding down
  // at a poll point, the queued ones without running.
  std::vector<Json> results;
  for (int i = 0; i < 3; ++i) {
    std::optional<Json> reply = c.recv();
    if (!reply.has_value()) break;
    results.push_back(*reply);
  }
  ASSERT_EQ(results.size(), 3u) << "jobs went unanswered during the drain";
  int interrupted = 0;
  for (const Json& r : results) {
    EXPECT_EQ(field(r, "type"), "result");
    if (field(r, "status") == "interrupted") ++interrupted;
  }
  // The queued jobs (at least) must be interrupted; the in-flight one may
  // have finished before the signal landed on a fast machine.
  EXPECT_GE(interrupted, 2) << "queued jobs were not drained as interrupted";
  EXPECT_EQ(d.wait_exit(), 143);
  EXPECT_FALSE(path_exists(d.socket_path)) << "socket file not unlinked";
  const std::string events = slurp(d.events_path);
  EXPECT_NE(events.find("\"status\":\"interrupted\""), std::string::npos);
}

TEST(ServeE2e, LanesFourProducesByteIdenticalArtifactsToLanesOne) {
  // Cache off so every job actually executes on a lane; at --lanes=4 four
  // jobs run concurrently, each on a private slot/domain/pool, and every
  // artifact must still match the one-shot flow byte for byte.
  const std::vector<std::string> circuits = {"c17", "s27", "add8", "mux4"};
  const unsigned k = 5;

  Json jobs = Json::array();
  for (const std::string& c : circuits) {
    Json j = Json::object();
    j.set("id", c);
    j.set("circuit", c);
    j.set("proc", "2");
    j.set("k", std::uint64_t{k});
    jobs.push(std::move(j));
  }
  Json manifest = Json::object();
  manifest.set("jobs", std::move(jobs));
  const std::string manifest_path = temp_path("lanes_manifest.json");
  spit(manifest_path, manifest.dump(2));

  for (const std::string& lanes : {"1", "4"}) {
    Daemon d("lanes" + lanes);
    d.start("--lanes=" + lanes + " --cache-mb=0");
    const std::string dir = temp_path("lanes" + lanes + "_out");
    ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
    const RunResult replay = run_cmd(
        std::string(RESYNTH_CLIENT_PATH) + " --socket=" + d.socket_path +
        " --manifest=" + manifest_path + " --concurrency=4 --out-dir=" + dir);
    EXPECT_EQ(replay.exit_code, 0) << replay.err;
    for (const std::string& c : circuits) {
      const OneShot expect = one_shot(c, k);
      const std::string base = dir + "/" + c;
      std::string err;
      const std::optional<Json> rep =
          Json::parse(slurp(base + ".report.json"), &err);
      ASSERT_TRUE(rep.has_value()) << base << ": " << err;
      expect_matches_one_shot(expect, slurp(base + ".bench"), *rep,
                              slurp(base + ".stdout.txt"),
                              "lanes=" + lanes + " " + base);
    }
    run_cmd(std::string(RESYNTH_CLIENT_PATH) + " --socket=" + d.socket_path +
            " --shutdown");
    EXPECT_EQ(d.wait_exit(), 0);
  }
}

TEST(ServeE2e, SigkillRestartServesByteIdenticalAnswersFromTheWal) {
  const std::string wal_path = temp_path("recovery.wal");
  std::remove(wal_path.c_str());
  const unsigned k = 5;

  // Phase 1: run two jobs to completion, then put a third in flight and
  // SIGKILL the daemon mid-execution.
  Daemon d1("wal1");
  d1.start("--wal=" + wal_path);
  for (const std::string& c : {"c17", "add8"}) {
    const RunResult r =
        run_cmd(std::string(RESYNTH_CLIENT_PATH) + " --socket=" +
                d1.socket_path + " --proc=2 --k=" + std::to_string(k) +
                " --id=" + c + " " + c);
    ASSERT_EQ(r.exit_code, 0) << r.err;
  }
  {
    Conn c;
    ASSERT_TRUE(c.connect(d1.socket_path));
    ASSERT_TRUE(c.send(job_message("inflight", "syn150", /*k=*/6)));
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }
  ASSERT_EQ(::kill(d1.pid, SIGKILL), 0);
  ASSERT_EQ(d1.wait_exit(), 137);       // 128 + SIGKILL
  std::remove(d1.socket_path.c_str());  // SIGKILL skips the unlink

  // Phase 2: a fresh daemon on the same journal. It must preload the two
  // finished results and deterministically re-execute the in-flight job.
  Daemon d2("wal2");
  d2.start("--wal=" + wal_path);
  {
    // Wait until the replayed job has re-executed (jobs_executed reaches 1;
    // the preloaded answers never re-execute).
    Conn c;
    ASSERT_TRUE(c.connect(d2.socket_path));
    ASSERT_TRUE(wait_for(
        [&] {
          Json stats = Json::object();
          stats.set("type", "stats");
          if (!c.send(stats)) return false;
          const std::optional<Json> reply = c.recv();
          return reply.has_value() &&
                 reply->find("wal_replayed") != nullptr &&
                 reply->find("wal_replayed")->as_u64() == 1 &&
                 reply->find("jobs_executed")->as_u64() >= 1;
        },
        60000));
    Json stats = Json::object();
    stats.set("type", "stats");
    ASSERT_TRUE(c.send(stats));
    const std::optional<Json> reply = c.recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->find("wal_recovered")->as_u64(), 2u)
        << "finished results were not preloaded from the journal";
  }

  // Every answer -- the two that finished before the kill, and the one that
  // was in flight -- now comes back byte-identical to a one-shot run, from
  // cache (nothing re-executes on re-submission).
  struct Probe {
    std::string circuit;
    unsigned k;
  };
  for (const Probe& p :
       {Probe{"c17", k}, Probe{"add8", k}, Probe{"syn150", 6}}) {
    const std::string bench_path = temp_path("rec_" + p.circuit + ".bench");
    const std::string report_path = temp_path("rec_" + p.circuit + ".json");
    // --retry also covers a daemon still replaying: the client re-submits
    // until the answer is there.
    const RunResult r = run_cmd(
        std::string(RESYNTH_CLIENT_PATH) + " --socket=" + d2.socket_path +
        " --proc=2 --k=" + std::to_string(p.k) + " --retry=5" +
        " --retry-base-ms=50 --out=" + bench_path + " --report=" +
        report_path + " " + p.circuit);
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const OneShot expect = one_shot(p.circuit, p.k);
    EXPECT_EQ(slurp(bench_path), expect.bench) << p.circuit;
    std::string err;
    const std::optional<Json> rep = Json::parse(slurp(report_path), &err);
    ASSERT_TRUE(rep.has_value()) << err;
    EXPECT_EQ(label_ordered_spans(masked_report_dump(*rep)),
              label_ordered_spans(masked_report_dump(expect.report)))
        << p.circuit;
  }
  {
    Conn c;
    ASSERT_TRUE(c.connect(d2.socket_path));
    Json stats = Json::object();
    stats.set("type", "stats");
    ASSERT_TRUE(c.send(stats));
    const std::optional<Json> reply = c.recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->find("cache_hits")->as_u64(), 3u)
        << "re-submitted jobs should all be served from the recovered cache";
  }
  run_cmd(std::string(RESYNTH_CLIENT_PATH) + " --socket=" + d2.socket_path +
          " --shutdown");
  EXPECT_EQ(d2.wait_exit(), 0);
  std::remove(wal_path.c_str());
}

TEST(ServeE2e, ClientRetriesThroughADaemonRestart) {
  // The daemon is down when the client starts; --retry keeps re-connecting
  // with backoff until the (restarted) daemon answers.
  Daemon d("retry");
  const std::string bench_path = temp_path("retry.bench");
  const std::string cmd = std::string(RESYNTH_CLIENT_PATH) + " --socket=" +
                          d.socket_path + " --proc=2 --k=5 --retry=40" +
                          " --retry-base-ms=100 --out=" + bench_path +
                          " --id=retry c17";
  const std::string rc_path = temp_path("retry_client.rc");
  std::remove(rc_path.c_str());
  ASSERT_EQ(std::system(("( " + cmd + " >/dev/null 2>&1; echo $? > " +
                         rc_path + " ) &")
                            .c_str()),
            0);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  d.start();
  ASSERT_TRUE(wait_for([&] { return !slurp(rc_path).empty(); }, 60000))
      << "client never finished";
  EXPECT_EQ(std::stoi(slurp(rc_path)), 0);
  EXPECT_EQ(slurp(bench_path), one_shot("c17", 5).bench);
  run_cmd(std::string(RESYNTH_CLIENT_PATH) + " --socket=" + d.socket_path +
          " --shutdown");
  EXPECT_EQ(d.wait_exit(), 0);
}

TEST(ServeE2e, FullQueueShedsDeterministicallyWithRetryHint) {
  Daemon d("shed");
  d.start("--queue-max=1");
  Conn c;
  ASSERT_TRUE(c.connect(d.socket_path));
  // Occupy the lane, then fill the queue, then overflow it.
  ASSERT_TRUE(c.send(job_message("long", "syn150", /*k=*/6)));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(c.send(job_message("queued", "c17")));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(c.send(job_message("shed1", "add8")));
  ASSERT_TRUE(c.send(job_message("shed2", "mux4")));

  // The shed answers come back immediately, ahead of the running jobs.
  int shed = 0;
  std::vector<Json> replies;
  for (int i = 0; i < 4; ++i) {
    const std::optional<Json> reply = c.recv();
    ASSERT_TRUE(reply.has_value());
    replies.push_back(*reply);
  }
  for (const Json& r : replies) {
    if (field(r, "error") == "overloaded") {
      ++shed;
      EXPECT_EQ(field(r, "status"), "error");
      ASSERT_NE(r.find("retry_after_ms"), nullptr)
          << "shed answer missing its retry hint";
      EXPECT_GT(r.find("retry_after_ms")->as_u64(), 0u);
    }
  }
  EXPECT_EQ(shed, 2) << "overflow jobs were not shed";

  Conn s;
  ASSERT_TRUE(s.connect(d.socket_path));
  Json stats = Json::object();
  stats.set("type", "stats");
  ASSERT_TRUE(s.send(stats));
  const std::optional<Json> reply = s.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->find("jobs_shed")->as_u64(), 2u);

  Json bye = Json::object();
  bye.set("type", "shutdown");
  ASSERT_TRUE(s.send(bye));
  s.recv();
  EXPECT_EQ(d.wait_exit(), 0);
}

TEST(ServeE2e, WatchdogInterruptsAHungJobAndTheLaneKeepsServing) {
  Daemon d("watchdog");
  d.start("--watchdog=0.5");
  Conn c;
  ASSERT_TRUE(c.connect(d.socket_path));
  // syn150/k=6 runs well past 0.5 s; the watchdog cancels it at a poll
  // point and the job answers "interrupted".
  ASSERT_TRUE(c.send(job_message("hung", "syn150", /*k=*/6)));
  std::optional<Json> reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "id"), "hung");
  EXPECT_EQ(field(*reply, "status"), "interrupted");

  // The same lane then serves the next job normally.
  ASSERT_TRUE(c.send(job_message("after", "c17")));
  reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "status"), "ok");

  Json stats = Json::object();
  stats.set("type", "stats");
  ASSERT_TRUE(c.send(stats));
  reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_GE(reply->find("watchdog_fires")->as_u64(), 1u);

  Json bye = Json::object();
  bye.set("type", "shutdown");
  ASSERT_TRUE(c.send(bye));
  c.recv();
  EXPECT_EQ(d.wait_exit(), 0);
}

TEST(ServeE2e, InjectedLaneCrashAndFrameCorruptionStayPerJob) {
  Daemon d("chaos");
  // 1st job started crashes its lane; 3rd daemon-sent frame is corrupted.
  d.start("--inject=lane:1,frame:3");
  Conn c;
  ASSERT_TRUE(c.connect(d.socket_path));

  // Frame 1: the scripted lane crash comes back as a per-job error.
  ASSERT_TRUE(c.send(job_message("crash", "c17")));
  std::optional<Json> reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "status"), "error");
  EXPECT_NE(field(*reply, "error").find("injected lane crash"),
            std::string::npos);

  // Frame 2: the daemon survived; the same lane serves real work.
  ASSERT_TRUE(c.send(job_message("after", "c17")));
  reply = c.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "status"), "ok");

  // Frame 3 is corrupted on the wire: framing stays intact (the reply
  // arrives) but one payload byte is flipped. A pong is small enough that
  // the flip is always detectable as a wrong/unparseable message.
  Json ping = Json::object();
  ping.set("type", "ping");
  ASSERT_TRUE(c.send(ping));
  std::string payload, err;
  ASSERT_EQ(read_frame(c.fd, &payload, &err), FrameStatus::Ok) << err;
  const std::optional<Json> parsed = Json::parse(payload, &err);
  EXPECT_TRUE(!parsed.has_value() || field(*parsed, "type") != "pong" ||
              field(*parsed, "schema") != kServeSchema)
      << "corrupted frame came through clean: " << payload;

  // Frame 4 onward is clean again.
  ASSERT_TRUE(c.send(ping));
  const std::optional<Json> pong = c.recv();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(field(*pong, "type"), "pong");

  Json bye = Json::object();
  bye.set("type", "shutdown");
  ASSERT_TRUE(c.send(bye));
  EXPECT_EQ(d.wait_exit(), 0);
}

TEST(ServeE2e, StdioTransportServesOneClient) {
  int to_daemon[2], from_daemon[2];
  ASSERT_EQ(::pipe(to_daemon), 0);
  ASSERT_EQ(::pipe(from_daemon), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(to_daemon[0], 0);
    ::dup2(from_daemon[1], 1);
    ::close(to_daemon[0]);
    ::close(to_daemon[1]);
    ::close(from_daemon[0]);
    ::close(from_daemon[1]);
    ::execl(RESYNTH_SERVE_PATH, "resynth_serve", "--stdio",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(to_daemon[0]);
  ::close(from_daemon[1]);
  const int wfd = to_daemon[1];
  const int rfd = from_daemon[0];

  std::string err;
  Json ping = Json::object();
  ping.set("type", "ping");
  ASSERT_TRUE(write_message(wfd, ping, &err)) << err;
  std::string payload;
  ASSERT_EQ(read_frame(rfd, &payload, &err), FrameStatus::Ok) << err;
  std::optional<Json> reply = Json::parse(payload, &err);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "type"), "pong");

  ASSERT_TRUE(write_message(wfd, job_message("stdio1", "c17"), &err));
  ASSERT_EQ(read_frame(rfd, &payload, &err), FrameStatus::Ok) << err;
  reply = Json::parse(payload, &err);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(field(*reply, "status"), "ok");
  EXPECT_FALSE(field(*reply, "bench").empty());

  // EOF on stdin is the stdio-mode shutdown request: graceful drain, exit 0.
  ::close(wfd);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  ::close(rfd);
}

}  // namespace
}  // namespace compsyn::serve
