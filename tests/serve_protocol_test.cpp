// compsyn-serve-v1 framing and message-codec tests: frame round-trips over
// real pipes, every framing failure mode (clean EOF, truncated prefix,
// truncated payload, oversized and zero length prefixes, should_stop), and
// the JobSpec/JobResult JSON codecs including field validation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"

namespace compsyn::serve {
namespace {

struct Pipe {
  int rfd = -1;
  int wfd = -1;
  Pipe() {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    rfd = fds[0];
    wfd = fds[1];
  }
  ~Pipe() {
    close_write();
    if (rfd >= 0) ::close(rfd);
  }
  void close_write() {
    if (wfd >= 0) ::close(wfd);
    wfd = -1;
  }
};

/// Writes raw bytes (not a valid frame necessarily).
void write_raw(int fd, const std::string& bytes) {
  ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
}

TEST(ServeFraming, RoundTripsPayloads) {
  Pipe p;
  std::string err;
  const std::vector<std::string> payloads = {
      "{}", "x", std::string("\x00\xff\x7f", 3)};
  for (const std::string& sent : payloads) {
    ASSERT_TRUE(write_frame(p.wfd, sent, &err)) << err;
    std::string got;
    ASSERT_EQ(read_frame(p.rfd, &got, &err), FrameStatus::Ok) << err;
    EXPECT_EQ(got, sent);
  }
}

TEST(ServeFraming, RoundTripsPayloadLargerThanPipeBuffer) {
  // 70000 bytes exceeds the default 64KiB pipe capacity, so the writer must
  // run concurrently with the reader (write_all would otherwise block).
  Pipe p;
  const std::string sent(70000, 'a');
  std::thread writer([&] {
    std::string werr;
    EXPECT_TRUE(write_frame(p.wfd, sent, &werr)) << werr;
  });
  std::string got, err;
  EXPECT_EQ(read_frame(p.rfd, &got, &err), FrameStatus::Ok) << err;
  writer.join();
  EXPECT_EQ(got, sent);
}

TEST(ServeFraming, BackToBackFramesKeepBoundaries) {
  Pipe p;
  std::string err;
  ASSERT_TRUE(write_frame(p.wfd, "first", &err));
  ASSERT_TRUE(write_frame(p.wfd, "second", &err));
  std::string got;
  ASSERT_EQ(read_frame(p.rfd, &got, &err), FrameStatus::Ok);
  EXPECT_EQ(got, "first");
  ASSERT_EQ(read_frame(p.rfd, &got, &err), FrameStatus::Ok);
  EXPECT_EQ(got, "second");
}

TEST(ServeFraming, CleanEofBeforeAnyByte) {
  Pipe p;
  p.close_write();
  std::string got, err;
  EXPECT_EQ(read_frame(p.rfd, &got, &err), FrameStatus::Eof);
}

TEST(ServeFraming, TruncatedLengthPrefix) {
  Pipe p;
  write_raw(p.wfd, std::string("\x00\x00", 2));
  p.close_write();
  std::string got, err;
  EXPECT_EQ(read_frame(p.rfd, &got, &err), FrameStatus::Truncated);
  EXPECT_NE(err.find("length prefix"), std::string::npos) << err;
}

TEST(ServeFraming, TruncatedPayload) {
  Pipe p;
  // Announce 100 bytes, deliver 10.
  write_raw(p.wfd, std::string("\x00\x00\x00\x64", 4));
  write_raw(p.wfd, std::string(10, 'x'));
  p.close_write();
  std::string got, err;
  EXPECT_EQ(read_frame(p.rfd, &got, &err), FrameStatus::Truncated);
  EXPECT_NE(err.find("100-byte frame payload"), std::string::npos) << err;
}

TEST(ServeFraming, OversizedLengthPrefixIsRejectedWithoutAllocating) {
  Pipe p;
  write_raw(p.wfd, std::string("\xff\xff\xff\xff", 4));
  std::string got, err;
  EXPECT_EQ(read_frame(p.rfd, &got, &err), FrameStatus::TooLarge);
  EXPECT_NE(err.find("exceeds"), std::string::npos) << err;
}

TEST(ServeFraming, CustomLimitApplies) {
  Pipe p;
  std::string err;
  ASSERT_TRUE(write_frame(p.wfd, std::string(64, 'y'), &err));
  std::string got;
  EXPECT_EQ(read_frame(p.rfd, &got, &err, {}, /*max_payload=*/16),
            FrameStatus::TooLarge);
}

TEST(ServeFraming, ZeroLengthFrameIsInvalid) {
  Pipe p;
  write_raw(p.wfd, std::string("\x00\x00\x00\x00", 4));
  std::string got, err;
  EXPECT_EQ(read_frame(p.rfd, &got, &err), FrameStatus::TooLarge);
  EXPECT_NE(err.find("empty frames"), std::string::npos) << err;
}

TEST(ServeFraming, WriteRejectsEmptyAndOversized) {
  Pipe p;
  std::string err;
  EXPECT_FALSE(write_frame(p.wfd, "", &err));
  EXPECT_FALSE(write_frame(p.wfd, std::string(32, 'z'), &err,
                           /*max_payload=*/16));
}

TEST(ServeFraming, ShouldStopAbandonsABlockedRead) {
  Pipe p;  // nothing ever written
  std::atomic<bool> stop{false};
  std::string got, err;
  FrameStatus st = FrameStatus::Ok;
  std::thread reader([&] {
    st = read_frame(p.rfd, &got, &err, [&] { return stop.load(); });
  });
  stop.store(true);
  reader.join();
  EXPECT_EQ(st, FrameStatus::Stopped);
}

TEST(ServeJobSpec, RoundTripsAllFields) {
  JobSpec spec;
  spec.id = "j1";
  spec.circuit = "dir/c432.bench";
  spec.bench = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
  spec.proc = "combined";
  spec.k = 8;
  spec.weight_gates = 0.25;
  spec.weight_paths = 1.75;
  spec.verify = "both";
  spec.sat = "oneshot";
  spec.budget = 12345;
  spec.deadline = 1.5;
  std::string err;
  const std::optional<JobSpec> back = JobSpec::from_json(spec.to_json(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->id, spec.id);
  EXPECT_EQ(back->circuit, spec.circuit);
  EXPECT_EQ(back->bench, spec.bench);
  EXPECT_EQ(back->proc, spec.proc);
  EXPECT_EQ(back->k, spec.k);
  EXPECT_EQ(back->weight_gates, spec.weight_gates);
  EXPECT_EQ(back->weight_paths, spec.weight_paths);
  EXPECT_EQ(back->verify, spec.verify);
  EXPECT_EQ(back->sat, spec.sat);
  EXPECT_EQ(back->budget, spec.budget);
  EXPECT_EQ(back->deadline, spec.deadline);
  EXPECT_EQ(back->option_key(), spec.option_key());
}

TEST(ServeJobSpec, DefaultsMatchResynthFlow) {
  Json j = Json::object();
  j.set("type", "job");
  j.set("id", "d");
  j.set("circuit", "add8");
  std::string err;
  const std::optional<JobSpec> spec = JobSpec::from_json(j, &err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_EQ(spec->proc, "2");
  EXPECT_EQ(spec->k, 6u);
  EXPECT_EQ(spec->weight_gates, 1.0);
  EXPECT_EQ(spec->weight_paths, 1.0);
  EXPECT_EQ(spec->verify, "sim");
  EXPECT_EQ(spec->sat, "session");
  EXPECT_EQ(spec->budget, 0u);
  EXPECT_EQ(spec->deadline, 0.0);
  EXPECT_FALSE(spec->robust_active());
}

TEST(ServeJobSpec, ValidationRejectsBadFields) {
  auto base = [] {
    Json j = Json::object();
    j.set("type", "job");
    j.set("id", "x");
    j.set("circuit", "c17");
    return j;
  };
  std::string err;
  Json j = base();
  j.set("proc", "4");
  EXPECT_FALSE(JobSpec::from_json(j, &err).has_value());
  EXPECT_NE(err.find("proc"), std::string::npos);
  j = base();
  j.set("k", std::uint64_t{0});
  EXPECT_FALSE(JobSpec::from_json(j, &err).has_value());
  j = base();
  j.set("k", std::uint64_t{17});
  EXPECT_FALSE(JobSpec::from_json(j, &err).has_value());
  j = base();
  j.set("verify", "always");
  EXPECT_FALSE(JobSpec::from_json(j, &err).has_value());
  j = base();
  j.set("sat", "magic");
  EXPECT_FALSE(JobSpec::from_json(j, &err).has_value());
  // Missing id / circuit.
  j = Json::object();
  j.set("circuit", "c17");
  EXPECT_FALSE(JobSpec::from_json(j, &err).has_value());
  j = Json::object();
  j.set("id", "x");
  EXPECT_FALSE(JobSpec::from_json(j, &err).has_value());
  j = base();
  j.set("circuit", "");
  EXPECT_FALSE(JobSpec::from_json(j, &err).has_value());
}

TEST(ServeJobSpec, OptionKeySeparatesEveryKnob) {
  JobSpec a;
  a.id = "a";
  a.circuit = "c17";
  std::vector<JobSpec> variants(7, a);
  variants[0].proc = "3";
  variants[1].k = 7;
  variants[2].weight_gates = 2.0;
  variants[3].weight_paths = 0.5;
  variants[4].verify = "sat";
  variants[5].sat = "oneshot";
  variants[6].budget = 99;
  for (const JobSpec& v : variants) {
    EXPECT_NE(v.option_key(), a.option_key());
  }
  // id and deadline are NOT part of the key: ids are correlation-only and
  // deadline jobs are never cached at all.
  JobSpec b = a;
  b.id = "other";
  b.deadline = 3.0;
  EXPECT_EQ(b.option_key(), a.option_key());
}

TEST(ServeJobResult, RoundTrips) {
  JobResult r;
  r.id = "j9";
  r.status = "degraded";
  r.cache_hit = true;
  r.error = "budget";
  r.bench = "# c\nINPUT(a)\n";
  Json rep = Json::object();
  rep.set("name", "resynth_flow");
  r.report = rep;
  r.stdout_text = "circuit c: ...\n";
  r.wall_ms = 12.5;
  std::string err;
  const std::optional<JobResult> back =
      JobResult::from_json(r.to_json(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->id, r.id);
  EXPECT_EQ(back->status, r.status);
  EXPECT_TRUE(back->cache_hit);
  EXPECT_EQ(back->error, r.error);
  EXPECT_EQ(back->bench, r.bench);
  EXPECT_EQ(back->report.dump(), r.report.dump());
  EXPECT_EQ(back->stdout_text, r.stdout_text);
  EXPECT_EQ(back->wall_ms, r.wall_ms);
}

}  // namespace
}  // namespace compsyn::serve
