// Unit tests for the compsyn-serve-wal-v1 job journal (serve/wal.hpp):
// record encode/decode round trips, guard detection of corruption, replay
// of real files, tolerance of torn/garbage tails, refusal of foreign
// headers, tmp+rename compaction, and the dead-on-first-failure append
// policy under scripted wal:N injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "robust/inject.hpp"
#include "serve/wal.hpp"

namespace compsyn::serve {
namespace {

std::string temp_path(const std::string& leaf) {
  return testing::TempDir() + "compsyn_wal_" + leaf;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << text;
  ASSERT_TRUE(os.good()) << path;
}

WalRecord accepted_record(std::uint64_t seq, const std::string& circuit) {
  WalRecord rec;
  rec.type = "accepted";
  rec.seq = seq;
  Json job = Json::object();
  job.set("circuit", circuit);
  rec.fields.set("job", job);
  return rec;
}

TEST(WalRecord, EncodeDecodeRoundTrip) {
  WalRecord rec;
  rec.type = "finished";
  rec.seq = 42;
  rec.fields.set("status", "ok");
  rec.fields.set("bench", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  const std::string line = rec.encode();
  // The guard is the last key, so the line is self-checking as raw bytes.
  EXPECT_NE(line.find("\"guard\":\""), std::string::npos);
  EXPECT_EQ(line.rfind('}'), line.size() - 1);

  std::string err;
  const std::optional<WalRecord> back = WalRecord::decode(line, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->type, "finished");
  EXPECT_EQ(back->seq, 42u);
  ASSERT_NE(back->fields.find("status"), nullptr);
  EXPECT_EQ(back->fields.find("status")->as_string(), "ok");
  ASSERT_NE(back->fields.find("bench"), nullptr);
  EXPECT_EQ(back->fields.find("bench")->as_string(),
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  // The guard itself is not surfaced as a payload field.
  EXPECT_EQ(back->fields.find("guard"), nullptr);
}

TEST(WalRecord, GuardDetectsEverySingleByteFlip) {
  const std::string line = accepted_record(7, "c17").encode();
  for (std::size_t i = 0; i < line.size(); ++i) {
    std::string bad = line;
    bad[i] ^= 0x01;
    std::string err;
    EXPECT_FALSE(WalRecord::decode(bad, &err).has_value())
        << "flip at offset " << i << " went undetected";
  }
}

TEST(WalRecord, TruncationsAreRejected) {
  const std::string line = accepted_record(9, "add8").encode();
  for (std::size_t keep : {std::size_t{0}, line.size() / 2, line.size() - 1}) {
    std::string err;
    EXPECT_FALSE(WalRecord::decode(line.substr(0, keep), &err).has_value())
        << "kept " << keep << " bytes";
  }
}

TEST(JobWal, FreshOpenAppendReopenReplays) {
  const std::string path = temp_path("fresh.wal");
  std::remove(path.c_str());
  std::string err;
  {
    JobWal wal;
    JobWal::Replay replay;
    ASSERT_TRUE(wal.open(path, &replay, &err)) << err;
    EXPECT_TRUE(replay.records.empty());
    EXPECT_EQ(replay.dropped, 0u);
    ASSERT_TRUE(wal.append(accepted_record(1, "c17"), &err)) << err;
    WalRecord started;
    started.type = "started";
    started.seq = 1;
    ASSERT_TRUE(wal.append(started, &err)) << err;
    wal.close();
  }
  // First line is the format header.
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text[0], '{');
  EXPECT_LT(text.find(kWalFormat), text.find('\n'));

  JobWal wal;
  JobWal::Replay replay;
  ASSERT_TRUE(wal.open(path, &replay, &err)) << err;
  EXPECT_EQ(replay.dropped, 0u);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].type, "accepted");
  EXPECT_EQ(replay.records[0].seq, 1u);
  EXPECT_EQ(replay.records[1].type, "started");
  std::remove(path.c_str());
}

TEST(JobWal, TornAndGarbageTailIsDroppedNotFatal) {
  const std::string path = temp_path("torn.wal");
  std::remove(path.c_str());
  std::string err;
  {
    JobWal wal;
    JobWal::Replay replay;
    ASSERT_TRUE(wal.open(path, &replay, &err)) << err;
    ASSERT_TRUE(wal.append(accepted_record(1, "c17"), &err)) << err;
    ASSERT_TRUE(wal.append(accepted_record(2, "add8"), &err)) << err;
    wal.close();
  }
  // Simulate a crash mid-append: a half-written record then stray bytes.
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    const std::string half = accepted_record(3, "mux4").encode();
    os << half.substr(0, half.size() / 2) << "\n";
    os << "not json at all\n";
  }
  JobWal wal;
  JobWal::Replay replay;
  ASSERT_TRUE(wal.open(path, &replay, &err)) << err;
  ASSERT_EQ(replay.records.size(), 2u) << "intact prefix must survive";
  EXPECT_EQ(replay.records[1].seq, 2u);
  EXPECT_GE(replay.dropped, 1u);
  // The reopened journal still accepts appends after the damage.
  ASSERT_TRUE(wal.append(accepted_record(4, "s27"), &err)) << err;
  std::remove(path.c_str());
}

TEST(JobWal, ForeignHeaderRefused) {
  const std::string path = temp_path("foreign.wal");
  spit(path, "{\"type\":\"header\",\"format\":\"some-other-format-v9\"}\n");
  JobWal wal;
  JobWal::Replay replay;
  std::string err;
  EXPECT_FALSE(wal.open(path, &replay, &err));
  EXPECT_FALSE(err.empty());
  std::remove(path.c_str());
}

TEST(JobWal, CompactionKeepsOnlyGivenRecordsAndStaysAppendable) {
  const std::string path = temp_path("compact.wal");
  std::remove(path.c_str());
  std::string err;
  JobWal wal;
  JobWal::Replay replay;
  ASSERT_TRUE(wal.open(path, &replay, &err)) << err;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    ASSERT_TRUE(wal.append(accepted_record(s, "c17"), &err)) << err;
  }
  ASSERT_TRUE(wal.compact({accepted_record(5, "c17")}, &err)) << err;
  ASSERT_TRUE(wal.append(accepted_record(6, "add8"), &err)) << err;
  wal.close();

  JobWal back;
  JobWal::Replay after;
  ASSERT_TRUE(back.open(path, &after, &err)) << err;
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[0].seq, 5u);
  EXPECT_EQ(after.records[1].seq, 6u);
  EXPECT_EQ(after.dropped, 0u);
  std::remove(path.c_str());
}

TEST(JobWal, InjectedAppendFailureMarksJournalDead) {
  const std::string path = temp_path("dead.wal");
  std::remove(path.c_str());
  std::string err;
  // Append ordinals are global: the fresh-open header write is the 1st.
  const auto parsed = robust::FaultPlan::parse("wal:3", &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  robust::InjectScope scope(*parsed);

  JobWal wal;
  JobWal::Replay replay;
  ASSERT_TRUE(wal.open(path, &replay, &err)) << err;
  ASSERT_TRUE(wal.append(accepted_record(1, "c17"), &err)) << err;
  // The 3rd append is scripted to fail; the journal goes dead and every
  // later append fails too (a torn line poisons everything after it).
  EXPECT_FALSE(wal.append(accepted_record(2, "add8"), &err));
  EXPECT_FALSE(wal.append(accepted_record(3, "mux4"), &err));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace compsyn::serve
