#include <gtest/gtest.h>

#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

TEST(SubjectGraph, OnlyNandInvInputs) {
  Netlist nl = make_benchmark("alu4");
  Netlist s = to_subject_graph(nl);
  for (NodeId n = 0; n < s.size(); ++n) {
    if (s.is_dead(n)) continue;
    const GateType t = s.node(n).type;
    EXPECT_TRUE(t == GateType::Input || t == GateType::Nand || t == GateType::Not ||
                t == GateType::Const0 || t == GateType::Const1)
        << to_string(t);
    if (t == GateType::Nand) {
      EXPECT_EQ(s.node(n).fanins.size(), 2u);
    }
  }
}

TEST(SubjectGraph, PreservesFunction) {
  for (const char* name : {"c17", "s27", "add8", "cmp8", "dec5", "mux4", "alu4"}) {
    Netlist nl = make_benchmark(name);
    Netlist s = to_subject_graph(nl);
    Rng rng(1);
    auto res = check_equivalent(nl, s, rng);
    EXPECT_TRUE(res.equivalent) << name << ": " << res.message;
  }
}

TEST(SubjectGraph, CollapsesInverterPairs) {
  Netlist nl("ii");
  NodeId a = nl.add_input();
  NodeId n1 = nl.add_gate(GateType::Not, {a});
  NodeId n2 = nl.add_gate(GateType::Not, {n1});
  NodeId n3 = nl.add_gate(GateType::Not, {n2});
  nl.mark_output(n3);
  Netlist s = to_subject_graph(nl);
  // Triple inversion must reduce to a single inverter.
  EXPECT_EQ(s.gate_count(), 1u);
}

TEST(Techmap, SingleGateMapsToSingleCell) {
  Netlist nl("nand");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::Nand, {a, b});
  nl.mark_output(g);
  auto r = technology_map(nl);
  EXPECT_EQ(r.cell_count, 1u);
  EXPECT_EQ(r.area, 2u);  // nand2
  EXPECT_EQ(r.longest_path, 1u);
}

TEST(Techmap, And2PrefersAndCellOverNandInvPair) {
  Netlist nl("and");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {a, b});
  nl.mark_output(g);
  auto r = technology_map(nl);
  // and2 cell: area 3 in one cell (vs nand2+inv1 = 2 cells area 3; the DP
  // may pick either at equal area, but the cell count must then be 1 or 2
  // with total area exactly 3).
  EXPECT_EQ(r.area, 3u);
  EXPECT_LE(r.cell_count, 2u);
}

TEST(Techmap, Nand3UsesComplexCell) {
  Netlist nl("nand3");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId c = nl.add_input();
  NodeId g = nl.add_gate(GateType::Nand, {a, b, c});
  nl.mark_output(g);
  auto r = technology_map(nl);
  EXPECT_EQ(r.area, 3u);  // one nand3
  EXPECT_EQ(r.cell_count, 1u);
  EXPECT_EQ(r.longest_path, 1u);
}

TEST(Techmap, XorUsesXorCell) {
  Netlist nl("xor");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::Xor, {a, b});
  nl.mark_output(g);
  auto r = technology_map(nl);
  EXPECT_EQ(r.area, 5u);
  EXPECT_EQ(r.cell_count, 1u);
  EXPECT_EQ(r.cells[0].cell, "xor2");
}

TEST(Techmap, Aoi21Matched) {
  // ~(ab + c)
  Netlist nl("aoi");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId c = nl.add_input();
  NodeId ab = nl.add_gate(GateType::And, {a, b});
  NodeId g = nl.add_gate(GateType::Nor, {ab, c});
  nl.mark_output(g);
  auto r = technology_map(nl);
  EXPECT_EQ(r.area, 3u);
  EXPECT_EQ(r.cell_count, 1u);
  EXPECT_EQ(r.cells[0].cell, "aoi21");
}

TEST(Techmap, FanoutBoundaryRespected) {
  // The AND feeds two consumers: no complex cell may swallow it, so the
  // mapping must keep a cell boundary at the AND output.
  Netlist nl("fan");
  NodeId a = nl.add_input();
  NodeId b = nl.add_input();
  NodeId c = nl.add_input();
  NodeId ab = nl.add_gate(GateType::And, {a, b});
  NodeId g1 = nl.add_gate(GateType::Nor, {ab, c});
  NodeId g2 = nl.add_gate(GateType::Or, {ab, c});
  nl.mark_output(g1);
  nl.mark_output(g2);
  auto r = technology_map(nl);
  EXPECT_GE(r.cell_count, 3u);
}

TEST(Techmap, AreaAndDepthScaleWithCircuit) {
  auto small = technology_map(make_benchmark("add8"));
  auto large = technology_map(make_benchmark("syn300"));
  EXPECT_GT(small.area, 0u);
  EXPECT_GT(large.area, small.area);
  EXPECT_GT(small.longest_path, 1u);
  // The mapped depth of a ripple adder grows along the carry chain.
  auto add4 = technology_map(make_ripple_adder(4));
  auto add16 = technology_map(make_ripple_adder(16));
  EXPECT_GT(add16.longest_path, add4.longest_path);
}

TEST(Techmap, DeterministicResults) {
  auto a = technology_map(make_benchmark("syn150"));
  auto b = technology_map(make_benchmark("syn150"));
  EXPECT_EQ(a.area, b.area);
  EXPECT_EQ(a.longest_path, b.longest_path);
  EXPECT_EQ(a.cell_count, b.cell_count);
}

TEST(Techmap, CellAreasSumToTotal) {
  auto r = technology_map(make_benchmark("cmp8"));
  std::uint64_t sum = 0;
  for (const auto& c : r.cells) sum += c.area;
  EXPECT_EQ(sum, r.area);
  EXPECT_EQ(r.cells.size(), r.cell_count);
}

}  // namespace
}  // namespace compsyn
