// End-to-end telemetry CLI tests: resynth_flow with --trace-out / --events /
// --progress produces artifacts that pass the in-repo validators, shows at
// least two thread tracks at --jobs=4, and -- critically -- leaves stdout
// and the report byte-identical when none of the new flags are passed.
//
// In a -DCOMPSYN_TRACE=0 build the flags still work (empty-but-valid trace,
// minimal event log); the instrumentation-content assertions are gated.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/trace_check.hpp"

#ifndef RESYNTH_FLOW_PATH
#error "RESYNTH_FLOW_PATH must be defined by the build"
#endif

namespace compsyn {
namespace {

std::string temp_path(const std::string& leaf) {
  return testing::TempDir() + "compsyn_telemetry_cli_" + leaf;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

struct RunResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

RunResult run_flow(const std::string& args) {
  static int serial = 0;
  const std::string out_path = temp_path("out" + std::to_string(serial));
  const std::string err_path = temp_path("err" + std::to_string(serial));
  ++serial;
  const std::string cmd = std::string(RESYNTH_FLOW_PATH) + " " + args + " >" +
                          out_path + " 2>" + err_path;
  const int raw = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  r.out = slurp(out_path);
  r.err = slurp(err_path);
  std::remove(out_path.c_str());
  std::remove(err_path.c_str());
  return r;
}

TEST(TelemetryCli, TraceOutPassesTheChecker) {
  const std::string trace = temp_path("trace.json");
  const RunResult r = run_flow("--jobs=4 --trace-out=" + trace + " syn150");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  const TraceCheckResult c = check_chrome_trace(slurp(trace));
  EXPECT_TRUE(c.ok) << (c.errors.empty() ? "" : c.errors.front());
#if COMPSYN_TRACE
  // Real instrumentation: nested spans on the main track, worker tracks
  // populated by per-cone X slices at --jobs=4.
  EXPECT_GT(c.span_pairs, 0u);
  EXPECT_GE(c.thread_tracks, 2u);
#endif
  std::remove(trace.c_str());
}

TEST(TelemetryCli, EventsLogIsSchemaValid) {
  const std::string events = temp_path("events.jsonl");
  const RunResult r = run_flow("--events=" + events + " mux4");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  std::ifstream is(events);
  std::vector<Json> records;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::string perr;
    auto j = Json::parse(line, &perr);
    ASSERT_TRUE(j.has_value()) << line << ": " << perr;
    records.push_back(std::move(*j));
  }
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(records.front().find("type")->as_string(), "start");
  EXPECT_EQ(records.front().find("schema")->as_string(), "compsyn-events-v1");
  EXPECT_EQ(records.back().find("type")->as_string(), "finish");
  EXPECT_EQ(records.back().find("status")->as_string(), "ok");
#if COMPSYN_TRACE
  // The flow's top-level phases bracket the run.
  bool saw_phase = false;
  for (const Json& rec : records) {
    if (rec.find("type")->as_string() == "phase") saw_phase = true;
  }
  EXPECT_TRUE(saw_phase);
#endif
  std::remove(events.c_str());
}

TEST(TelemetryCli, ProgressHeartbeatStaysOnStderr) {
  const RunResult with = run_flow("--progress=0.0001 syn150");
  ASSERT_EQ(with.exit_code, 0) << with.err;
#if COMPSYN_TRACE
  EXPECT_NE(with.err.find("[resynth_flow]"), std::string::npos) << with.err;
#endif
  // stdout is identical to a flag-free run either way.
  const RunResult without = run_flow("syn150");
  ASSERT_EQ(without.exit_code, 0) << without.err;
  EXPECT_EQ(with.out, without.out);
}

TEST(TelemetryCli, ExtendedReportSectionsAppearOnlyWithTelemetryFlags) {
  const std::string plain = temp_path("plain.json");
  const std::string extended = temp_path("extended.json");
  const std::string trace = temp_path("sections_trace.json");
  ASSERT_EQ(run_flow("--report=" + plain + " mux4").exit_code, 0);
  ASSERT_EQ(run_flow("--report=" + extended + " --trace-out=" + trace +
                     " mux4")
                .exit_code,
            0);
  std::string err;
  auto p = Json::parse(slurp(plain), &err);
  ASSERT_TRUE(p.has_value()) << err;
  auto e = Json::parse(slurp(extended), &err);
  ASSERT_TRUE(e.has_value()) << err;
  // Plain --report: no new sections, guaranteed byte-compat with earlier
  // releases (the golden tests pin the exact bytes; this pins the reason).
  EXPECT_EQ(p->find("histograms"), nullptr);
  EXPECT_EQ(p->find("phases"), nullptr);
  EXPECT_EQ(p->find("hot_cones"), nullptr);
  EXPECT_EQ(p->find("peak_rss_bytes"), nullptr);
#if COMPSYN_TRACE
  EXPECT_NE(e->find("histograms"), nullptr);
  EXPECT_NE(e->find("phases"), nullptr);
  EXPECT_NE(e->find("hot_cones"), nullptr);
  EXPECT_NE(e->find("peak_rss_bytes"), nullptr);
#endif
  std::remove(plain.c_str());
  std::remove(extended.c_str());
  std::remove(trace.c_str());
}

TEST(TelemetryCli, JobsDoNotChangeDefaultStdout) {
  const RunResult j1 = run_flow("--jobs=1 syn150");
  const RunResult j4 = run_flow("--jobs=4 --trace-out=" +
                                temp_path("jobs_trace.json") + " syn150");
  ASSERT_EQ(j1.exit_code, 0);
  ASSERT_EQ(j4.exit_code, 0);
  // Telemetry flags never leak into stdout, at any thread count.
  EXPECT_EQ(j1.out, j4.out);
  std::remove(temp_path("jobs_trace.json").c_str());
}

}  // namespace
}  // namespace compsyn
