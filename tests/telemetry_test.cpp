// Unit tests for the profile-grade telemetry layer (DESIGN.md §12): the
// strict Chrome-trace checker, the ChromeTrace collector itself, the fixed
// log-scale histograms (including jobs-invariance of sample counts), phase
// attribution, the bench-v2 schema normalizer, and the Json double
// round-trip contract the schemas rely on.
//
// Everything here must pass under -DCOMPSYN_TRACE=0 as well: collector tests
// are gated on the macro, checker/schema/Json tests are pure functions.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/resynth.hpp"
#include "exec/exec.hpp"
#include "gen/circuits.hpp"
#include "obs/bench_schema.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_check.hpp"

namespace compsyn {
namespace {

std::string temp_path(const std::string& leaf) {
  return testing::TempDir() + "compsyn_telemetry_" + leaf;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------- checker --

const char* kGoodTrace = R"({"traceEvents":[
  {"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,
   "args":{"name":"resynth_flow"}},
  {"name":"outer","ph":"B","ts":0,"pid":1,"tid":0},
  {"name":"inner","ph":"B","ts":1.5,"pid":1,"tid":0},
  {"name":"inner","ph":"E","ts":2.5,"pid":1,"tid":0},
  {"name":"outer","ph":"E","ts":9,"pid":1,"tid":0},
  {"name":"cone","ph":"X","ts":3,"dur":0.5,"pid":1,"tid":1},
  {"name":"checkpoint.write","ph":"i","ts":4,"pid":1,"tid":0,"s":"t"},
  {"name":"sat.session.vars","ph":"C","ts":5,"pid":1,"tid":0,
   "args":{"value":120}}
],"displayTimeUnit":"ms"})";

TEST(TraceCheck, AcceptsWellFormedTrace) {
  const TraceCheckResult r = check_chrome_trace(kGoodTrace);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_EQ(r.events, 8u);
  EXPECT_EQ(r.span_pairs, 3u);  // outer, inner, and the X (complete) slice
  EXPECT_EQ(r.instants, 1u);
  EXPECT_EQ(r.counter_samples, 1u);
  EXPECT_EQ(r.thread_tracks, 2u);  // tid 0 (B/E) and tid 1 (X)
}

TEST(TraceCheck, RejectsMalformedDocuments) {
  EXPECT_FALSE(check_chrome_trace("not json").ok);
  EXPECT_FALSE(check_chrome_trace("{}").ok);                     // no traceEvents
  EXPECT_FALSE(check_chrome_trace(R"({"traceEvents":{}})").ok);  // not array
}

TEST(TraceCheck, RejectsBadEvents) {
  // E with a name that does not match the open B.
  EXPECT_FALSE(check_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"B","ts":0,"pid":1,"tid":0},
    {"name":"b","ph":"E","ts":1,"pid":1,"tid":0}]})")
                   .ok);
  // Unclosed B.
  EXPECT_FALSE(check_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"B","ts":0,"pid":1,"tid":0}]})")
                   .ok);
  // E without any open B.
  EXPECT_FALSE(check_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"E","ts":0,"pid":1,"tid":0}]})")
                   .ok);
  // Missing ph.
  EXPECT_FALSE(check_chrome_trace(R"({"traceEvents":[
    {"name":"a","ts":0,"pid":1,"tid":0}]})")
                   .ok);
  // Unknown ph.
  EXPECT_FALSE(check_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"Q","ts":0,"pid":1,"tid":0}]})")
                   .ok);
  // C without a numeric series.
  EXPECT_FALSE(check_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"C","ts":0,"pid":1,"tid":0,"args":{}}]})")
                   .ok);
  // X without dur.
  EXPECT_FALSE(check_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"X","ts":0,"pid":1,"tid":0}]})")
                   .ok);
  // Timestamps going backwards on one track.
  EXPECT_FALSE(check_chrome_trace(R"({"traceEvents":[
    {"name":"a","ph":"B","ts":5,"pid":1,"tid":0},
    {"name":"a","ph":"E","ts":1,"pid":1,"tid":0}]})")
                   .ok);
}

// -------------------------------------------------------------- collector --

#if COMPSYN_TRACE

class ChromeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { ChromeTrace::disable_and_clear(); }
  void TearDown() override {
    ChromeTrace::disable_and_clear();
    telemetry_set_extended(false);
    telemetry_reset();
    obs_set_enabled(false);
  }
};

TEST_F(ChromeTraceTest, RecordsNothingWhileDisabled) {
  EXPECT_FALSE(ChromeTrace::enabled());
  EXPECT_FALSE(ChromeTrace::begin("x"));
  ChromeTrace::instant("x");
  ChromeTrace::counter("x", 1.0);
  EXPECT_EQ(ChromeTrace::event_count(), 0u);
}

TEST_F(ChromeTraceTest, WritesCheckerCleanTrace) {
  ChromeTrace::enable();
  ASSERT_TRUE(ChromeTrace::begin("outer"));
  ASSERT_TRUE(ChromeTrace::begin("inner"));
  ChromeTrace::instant("milestone");
  ChromeTrace::counter("series", 42.0);
  ChromeTrace::end();  // inner
  const std::uint64_t t0 = ChromeTrace::now_ns();
  const std::uint64_t t1 = ChromeTrace::now_ns();
  ChromeTrace::complete("slice", t0, t1);
  ChromeTrace::end();  // outer

  // A second thread records on its own track.
  std::thread worker([] {
    ChromeTrace::set_thread_track(1);
    if (ChromeTrace::begin("worker-span")) ChromeTrace::end();
  });
  worker.join();

  const std::string path = temp_path("basic.json");
  std::string err;
  ASSERT_TRUE(ChromeTrace::write(path, &err)) << err;
  const TraceCheckResult r = check_chrome_trace(slurp(path));
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_EQ(r.span_pairs, 4u);  // outer, inner, worker-span, and the X slice
  EXPECT_EQ(r.instants, 1u);
  EXPECT_EQ(r.counter_samples, 1u);
  EXPECT_GE(r.thread_tracks, 2u);
  std::remove(path.c_str());
}

TEST_F(ChromeTraceTest, ArmedOutputFlushesOnce) {
  ChromeTrace::enable();
  if (ChromeTrace::begin("span")) ChromeTrace::end();
  const std::string path = temp_path("armed.json");
  ChromeTrace::arm_output(path);
  ChromeTrace::flush_armed();
  EXPECT_TRUE(check_chrome_trace(slurp(path)).ok);
  // Disarmed after the flush: removing the file and flushing again must not
  // recreate it.
  std::remove(path.c_str());
  ChromeTrace::flush_armed();
  EXPECT_TRUE(slurp(path).empty());
}

// ------------------------------------------------------------- histograms --

class HistogramTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Histogram::reset();
    telemetry_set_extended(true);
  }
  void TearDown() override {
    telemetry_set_extended(false);
    Histogram::reset();
    telemetry_reset();
    obs_set_enabled(false);
  }
};

TEST_F(HistogramTest, BucketLayoutIsFixed) {
  EXPECT_EQ(Histogram::bucket_for(0), 0u);
  EXPECT_EQ(Histogram::bucket_for(1), 0u);
  EXPECT_EQ(Histogram::bucket_for(2), 1u);
  EXPECT_EQ(Histogram::bucket_for(3), 1u);
  EXPECT_EQ(Histogram::bucket_for(4), 2u);
  EXPECT_EQ(Histogram::bucket_for(1023), 9u);
  EXPECT_EQ(Histogram::bucket_for(1024), 10u);
  EXPECT_EQ(Histogram::bucket_for(std::uint64_t{1} << 39), 39u);
  EXPECT_EQ(Histogram::bucket_for(~std::uint64_t{0}), kHistBuckets - 1);
  // Upper bounds mirror the mapping.
  EXPECT_EQ(Histogram::bucket_upper_ns(0), 1u);
  EXPECT_EQ(Histogram::bucket_upper_ns(9), 1023u);
}

TEST_F(HistogramTest, ObservesOnlyWhenExtended) {
  telemetry_set_extended(false);
  Histogram::observe_ns("h", 10);
  EXPECT_TRUE(Histogram::snapshot().empty());
  telemetry_set_extended(true);
  Histogram::observe_ns("h", 10);
  Histogram::observe_ns("h", 1000);
  const auto snap = Histogram::snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "h");
  EXPECT_EQ(snap[0].count, 2u);
  EXPECT_EQ(snap[0].sum_ns, 1010u);
  ASSERT_EQ(snap[0].buckets.size(), kHistBuckets);
  EXPECT_EQ(snap[0].buckets[Histogram::bucket_for(10)], 1u);
  EXPECT_EQ(snap[0].buckets[Histogram::bucket_for(1000)], 1u);
}

TEST_F(HistogramTest, SnapshotIsNameSorted) {
  Histogram::observe_ns("zz", 1);
  Histogram::observe_ns("aa", 1);
  Histogram::observe_ns("mm", 1);
  const auto snap = Histogram::snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "aa");
  EXPECT_EQ(snap[1].name, "mm");
  EXPECT_EQ(snap[2].name, "zz");
}

/// Runs one resynthesis with extended telemetry and returns (name, count)
/// per histogram. Counts are a pure function of the work performed, so they
/// must not depend on the thread count.
std::vector<std::pair<std::string, std::uint64_t>> resynth_hist_counts(
    unsigned jobs) {
  Histogram::reset();
  telemetry_reset();
  set_jobs(jobs);
  Netlist nl = make_benchmark("alu4");
  (void)procedure2(nl, 5);
  set_jobs(1);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const HistStat& h : Histogram::snapshot()) {
    out.emplace_back(h.name, h.count);
  }
  return out;
}

TEST_F(HistogramTest, SampleCountsAreJobsInvariant) {
  const auto serial = resynth_hist_counts(1);
  const auto parallel = resynth_hist_counts(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

// ----------------------------------------------------------------- phases --

TEST(PhaseScopeTest, AttributesWallTimeWhenExtended) {
  telemetry_reset();
  telemetry_set_extended(true);
  {
    PhaseScope p("phase_a");
    volatile unsigned sink = 0;
    for (unsigned i = 0; i < 1000; ++i) sink = sink + i;
  }
  { PhaseScope p("phase_b"); }
  const auto phases = telemetry_phases();
  telemetry_set_extended(false);
  telemetry_reset();
  obs_set_enabled(false);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "phase_a");
  EXPECT_EQ(phases[1].name, "phase_b");
  EXPECT_GT(phases[0].peak_rss_bytes, 0u);
}

TEST(PhaseScopeTest, InertWithoutExtended) {
  telemetry_reset();
  { PhaseScope p("ignored"); }
  EXPECT_TRUE(telemetry_phases().empty());
}

// -------------------------------------------------------------- hot cones --

TEST(HotConesTest, RanksByTotalTime) {
  telemetry_reset();
  telemetry_set_extended(true);
  telemetry_note_cone("g1", 100, 2);
  telemetry_note_cone("g2", 900, 3);
  telemetry_note_cone("g1", 50, 1);
  const auto hot = telemetry_hot_cones(10);
  telemetry_set_extended(false);
  telemetry_reset();
  obs_set_enabled(false);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].root, "g2");
  EXPECT_EQ(hot[0].total_ns, 900u);
  EXPECT_EQ(hot[1].root, "g1");
  EXPECT_EQ(hot[1].total_ns, 150u);
  EXPECT_EQ(hot[1].cones, 3u);
}

#endif  // COMPSYN_TRACE

// ----------------------------------------------------------- bench schema --

TEST(BenchSchema, TagsLegacyReport) {
  Json legacy = Json::object();
  legacy.set("name", "table2_proc2");
  legacy.set("spans", Json::array());
  legacy.set("counters", Json::object());
  Json v2;
  std::string err;
  ASSERT_TRUE(bench_normalize_v2(std::move(legacy), &v2, &err)) << err;
  ASSERT_NE(v2.find("schema"), nullptr);
  EXPECT_EQ(v2.find("schema")->as_string(), kBenchSchemaV2);
  // The tag leads the document.
  EXPECT_EQ(v2.items().front().first, "schema");
}

TEST(BenchSchema, PassesV2Through) {
  Json doc = Json::object();
  doc.set("schema", std::string(kBenchSchemaV2));
  doc.set("name", "x");
  doc.set("spans", Json::array());
  doc.set("counters", Json::object());
  Json v2;
  ASSERT_TRUE(bench_normalize_v2(doc, &v2));
  EXPECT_EQ(v2.dump(), doc.dump());
}

TEST(BenchSchema, LiftsSummaryShape) {
  Json doc = Json::object();
  doc.set("bench", "table2_proc2");
  doc.set("date", "2026-08-06");
  doc.set("runs", Json::array());
  Json v2;
  std::string err;
  ASSERT_TRUE(bench_normalize_v2(std::move(doc), &v2, &err)) << err;
  EXPECT_EQ(v2.find("name")->as_string(), "table2_proc2");
  ASSERT_NE(v2.find("meta"), nullptr);
  EXPECT_NE(v2.find("meta")->find("date"), nullptr);
  EXPECT_NE(v2.find("runs"), nullptr);
}

TEST(BenchSchema, RejectsUnknownSchemaAndGarbage) {
  Json doc = Json::object();
  doc.set("schema", "compsyn-bench-v9");
  doc.set("name", "x");
  doc.set("spans", Json::array());
  doc.set("counters", Json::object());
  Json v2;
  std::string err;
  EXPECT_FALSE(bench_normalize_v2(std::move(doc), &v2, &err));
  EXPECT_FALSE(bench_normalize_v2(Json(7), &v2, &err));
  EXPECT_FALSE(bench_normalize_v2(Json::object(), &v2, &err));
}

// ------------------------------------------------- Json double round-trip --

// The bench/report schemas carry doubles (wall_seconds, tolerances); the
// writer emits shortest-round-trip forms (std::to_chars), which this test
// locks in: parse(dump(x)) must equal x bit-for-bit, and dump must be stable
// under a second round-trip.
TEST(JsonDoubles, ParseDumpParseRoundTrips) {
  const double cases[] = {0.0,
                          1.0,
                          -1.0,
                          0.1,
                          1.0 / 3.0,
                          56.167627174,
                          1e-7,
                          6.852,
                          1e300,
                          -2.2250738585072014e-308,  // smallest normal
                          5e-324,                    // smallest denormal
                          1.7976931348623157e308,    // largest finite
                          3.141592653589793};
  for (const double x : cases) {
    const std::string once = Json(x).dump();
    std::string err;
    const auto parsed = Json::parse(once, &err);
    ASSERT_TRUE(parsed.has_value()) << once << ": " << err;
    EXPECT_EQ(parsed->as_double(), x) << once;
    EXPECT_EQ(parsed->dump(), once);
  }
}

TEST(JsonDoubles, RoundTripsThroughDocuments) {
  Json doc = Json::object();
  doc.set("wall_seconds", 56.167627174);
  doc.set("tolerance", 0.1);
  Json arr = Json::array();
  arr.push(1e-7);
  arr.push(0.3333333333333333);
  doc.set("xs", std::move(arr));
  const std::string once = doc.dump(2);
  const auto parsed = Json::parse(once);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(2), once);
}

}  // namespace
}  // namespace compsyn
