#include <gtest/gtest.h>

#include "core/truth_table.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

TEST(TruthTable, ZeroVarTable) {
  TruthTable t(0);
  EXPECT_EQ(t.num_minterms(), 1u);
  EXPECT_FALSE(t.get(0));
  t.set(0, true);
  EXPECT_TRUE(t.get(0));
  EXPECT_TRUE(t.is_const_one());
}

TEST(TruthTable, SetGetRoundTrip) {
  TruthTable t(4);
  for (std::uint32_t m = 0; m < 16; m += 3) t.set(m, true);
  for (std::uint32_t m = 0; m < 16; ++m) EXPECT_EQ(t.get(m), m % 3 == 0);
  EXPECT_EQ(t.count_ones(), 6u);
}

TEST(TruthTable, FromBitsAndBack) {
  const std::string bits = "0110100110010110";  // 4-var parity-ish
  TruthTable t = TruthTable::from_bits(bits);
  EXPECT_EQ(t.num_vars(), 4u);
  EXPECT_EQ(t.to_bits(), bits);
}

TEST(TruthTable, FromBitsRejectsBadInput) {
  EXPECT_THROW(TruthTable::from_bits("011"), std::invalid_argument);
  EXPECT_THROW(TruthTable::from_bits("01x1"), std::invalid_argument);
}

TEST(TruthTable, TooManyVarsRejected) {
  EXPECT_THROW(TruthTable(17), std::invalid_argument);
}

TEST(TruthTable, MsbConvention) {
  // f = x1 (variable 0 is the MSB): ON minterms are the upper half.
  TruthTable t = TruthTable::from_function(3, [](std::uint32_t m) { return m >= 4; });
  const auto on = t.on_set();
  ASSERT_EQ(on.size(), 4u);
  EXPECT_EQ(on.front(), 4u);
  EXPECT_EQ(on.back(), 7u);
  // Cofactor on variable 0 (the MSB).
  EXPECT_TRUE(t.cofactor(0, true).is_const_one());
  EXPECT_TRUE(t.cofactor(0, false).is_const_zero());
}

TEST(TruthTable, ComplementAndConsts) {
  TruthTable t(5);
  EXPECT_TRUE(t.is_const_zero());
  TruthTable c = t.complemented();
  EXPECT_TRUE(c.is_const_one());
  EXPECT_EQ(c.count_ones(), 32u);
  EXPECT_EQ(c.complemented(), t);
}

TEST(TruthTable, Complement6VarMasksNothing) {
  TruthTable t(6);
  t.set(0, true);
  TruthTable c = t.complemented();
  EXPECT_EQ(c.count_ones(), 63u);
  EXPECT_FALSE(c.get(0));
  EXPECT_TRUE(c.get(63));
}

TEST(TruthTable, PermutedIdentity) {
  Rng rng(1);
  TruthTable t = TruthTable::from_function(4, [&](std::uint32_t) { return rng.flip(); });
  EXPECT_EQ(t.permuted({0, 1, 2, 3}), t);
}

TEST(TruthTable, PermutedSwapsVariables) {
  // f = x1 (MSB). After moving variable 1 into position 0, f = x2' ... i.e.
  // the permuted function should be "variable at position 1".
  TruthTable t = TruthTable::from_function(2, [](std::uint32_t m) { return m >= 2; });
  TruthTable p = t.permuted({1, 0});
  // p(b0 b1) = t(b1 b0): ON where the new LSB (old MSB) is 1: minterms 1, 3.
  EXPECT_FALSE(p.get(0));
  EXPECT_TRUE(p.get(1));
  EXPECT_FALSE(p.get(2));
  EXPECT_TRUE(p.get(3));
}

TEST(TruthTable, PermutedComposes) {
  Rng rng(7);
  TruthTable t = TruthTable::from_function(5, [&](std::uint32_t) { return rng.flip(); });
  const std::vector<unsigned> p1{2, 0, 4, 1, 3};
  // Applying p1 then its inverse returns the original.
  std::vector<unsigned> inv(5);
  for (unsigned j = 0; j < 5; ++j) inv[p1[j]] = j;
  EXPECT_EQ(t.permuted(p1).permuted(inv), t);
}

TEST(TruthTable, CofactorShannonExpansion) {
  Rng rng(3);
  TruthTable t = TruthTable::from_function(5, [&](std::uint32_t) { return rng.flip(); });
  for (unsigned v = 0; v < 5; ++v) {
    const TruthTable f0 = t.cofactor(v, false);
    const TruthTable f1 = t.cofactor(v, true);
    // Rebuild t from the cofactors.
    const unsigned shift = 5 - 1 - v;
    for (std::uint32_t m = 0; m < 32; ++m) {
      const bool bit = (m >> shift) & 1u;
      const std::uint32_t low = m & ((1u << shift) - 1u);
      const std::uint32_t reduced = ((m >> (shift + 1)) << shift) | low;
      EXPECT_EQ(t.get(m), bit ? f1.get(reduced) : f0.get(reduced));
    }
  }
}

TEST(TruthTable, VacuousAndSupport) {
  // f = x1 AND x3 over 3 vars: variable 1 is vacuous.
  TruthTable t = TruthTable::from_function(
      3, [](std::uint32_t m) { return ((m >> 2) & 1u) && (m & 1u); });
  EXPECT_FALSE(t.is_vacuous(0));
  EXPECT_TRUE(t.is_vacuous(1));
  EXPECT_FALSE(t.is_vacuous(2));
  EXPECT_EQ(t.support(), (std::vector<unsigned>{0, 2}));
  std::vector<unsigned> kept;
  TruthTable r = t.support_reduced(&kept);
  EXPECT_EQ(kept, (std::vector<unsigned>{0, 2}));
  EXPECT_EQ(r.num_vars(), 2u);
  // Reduced function is AND of its two vars: ON-set = {3}.
  EXPECT_EQ(r.on_set(), (std::vector<std::uint32_t>{3}));
}

TEST(TruthTable, SupportReducedOfConstant) {
  TruthTable t = TruthTable::from_function(4, [](std::uint32_t) { return true; });
  TruthTable r = t.support_reduced();
  EXPECT_EQ(r.num_vars(), 0u);
  EXPECT_TRUE(r.is_const_one());
}

TEST(TruthTable, HashDiscriminates) {
  TruthTable a = TruthTable::from_bits("01101001");
  TruthTable b = TruthTable::from_bits("01101000");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), TruthTable::from_bits("01101001").hash());
}

TEST(TruthTable, OnSetSortedAscending) {
  TruthTable t = TruthTable::from_bits("10010110");
  const auto on = t.on_set();
  EXPECT_EQ(on, (std::vector<std::uint32_t>{0, 3, 5, 6}));
}

}  // namespace
}  // namespace compsyn
