#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/truth_table.hpp"
#include "core/truth_table_ref.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

TEST(TruthTable, ZeroVarTable) {
  TruthTable t(0);
  EXPECT_EQ(t.num_minterms(), 1u);
  EXPECT_FALSE(t.get(0));
  t.set(0, true);
  EXPECT_TRUE(t.get(0));
  EXPECT_TRUE(t.is_const_one());
}

TEST(TruthTable, SetGetRoundTrip) {
  TruthTable t(4);
  for (std::uint32_t m = 0; m < 16; m += 3) t.set(m, true);
  for (std::uint32_t m = 0; m < 16; ++m) EXPECT_EQ(t.get(m), m % 3 == 0);
  EXPECT_EQ(t.count_ones(), 6u);
}

TEST(TruthTable, FromBitsAndBack) {
  const std::string bits = "0110100110010110";  // 4-var parity-ish
  TruthTable t = TruthTable::from_bits(bits);
  EXPECT_EQ(t.num_vars(), 4u);
  EXPECT_EQ(t.to_bits(), bits);
}

TEST(TruthTable, FromBitsRejectsBadInput) {
  EXPECT_THROW(TruthTable::from_bits("011"), std::invalid_argument);
  EXPECT_THROW(TruthTable::from_bits("01x1"), std::invalid_argument);
}

TEST(TruthTable, TooManyVarsRejected) {
  EXPECT_THROW(TruthTable(17), std::invalid_argument);
}

TEST(TruthTable, MsbConvention) {
  // f = x1 (variable 0 is the MSB): ON minterms are the upper half.
  TruthTable t = TruthTable::from_function(3, [](std::uint32_t m) { return m >= 4; });
  const auto on = t.on_set();
  ASSERT_EQ(on.size(), 4u);
  EXPECT_EQ(on.front(), 4u);
  EXPECT_EQ(on.back(), 7u);
  // Cofactor on variable 0 (the MSB).
  EXPECT_TRUE(t.cofactor(0, true).is_const_one());
  EXPECT_TRUE(t.cofactor(0, false).is_const_zero());
}

TEST(TruthTable, ComplementAndConsts) {
  TruthTable t(5);
  EXPECT_TRUE(t.is_const_zero());
  TruthTable c = t.complemented();
  EXPECT_TRUE(c.is_const_one());
  EXPECT_EQ(c.count_ones(), 32u);
  EXPECT_EQ(c.complemented(), t);
}

TEST(TruthTable, Complement6VarMasksNothing) {
  TruthTable t(6);
  t.set(0, true);
  TruthTable c = t.complemented();
  EXPECT_EQ(c.count_ones(), 63u);
  EXPECT_FALSE(c.get(0));
  EXPECT_TRUE(c.get(63));
}

TEST(TruthTable, PermutedIdentity) {
  Rng rng(1);
  TruthTable t = TruthTable::from_function(4, [&](std::uint32_t) { return rng.flip(); });
  EXPECT_EQ(t.permuted({0, 1, 2, 3}), t);
}

TEST(TruthTable, PermutedSwapsVariables) {
  // f = x1 (MSB). After moving variable 1 into position 0, f = x2' ... i.e.
  // the permuted function should be "variable at position 1".
  TruthTable t = TruthTable::from_function(2, [](std::uint32_t m) { return m >= 2; });
  TruthTable p = t.permuted({1, 0});
  // p(b0 b1) = t(b1 b0): ON where the new LSB (old MSB) is 1: minterms 1, 3.
  EXPECT_FALSE(p.get(0));
  EXPECT_TRUE(p.get(1));
  EXPECT_FALSE(p.get(2));
  EXPECT_TRUE(p.get(3));
}

TEST(TruthTable, PermutedComposes) {
  Rng rng(7);
  TruthTable t = TruthTable::from_function(5, [&](std::uint32_t) { return rng.flip(); });
  const std::vector<unsigned> p1{2, 0, 4, 1, 3};
  // Applying p1 then its inverse returns the original.
  std::vector<unsigned> inv(5);
  for (unsigned j = 0; j < 5; ++j) inv[p1[j]] = j;
  EXPECT_EQ(t.permuted(p1).permuted(inv), t);
}

TEST(TruthTable, CofactorShannonExpansion) {
  Rng rng(3);
  TruthTable t = TruthTable::from_function(5, [&](std::uint32_t) { return rng.flip(); });
  for (unsigned v = 0; v < 5; ++v) {
    const TruthTable f0 = t.cofactor(v, false);
    const TruthTable f1 = t.cofactor(v, true);
    // Rebuild t from the cofactors.
    const unsigned shift = 5 - 1 - v;
    for (std::uint32_t m = 0; m < 32; ++m) {
      const bool bit = (m >> shift) & 1u;
      const std::uint32_t low = m & ((1u << shift) - 1u);
      const std::uint32_t reduced = ((m >> (shift + 1)) << shift) | low;
      EXPECT_EQ(t.get(m), bit ? f1.get(reduced) : f0.get(reduced));
    }
  }
}

TEST(TruthTable, VacuousAndSupport) {
  // f = x1 AND x3 over 3 vars: variable 1 is vacuous.
  TruthTable t = TruthTable::from_function(
      3, [](std::uint32_t m) { return ((m >> 2) & 1u) && (m & 1u); });
  EXPECT_FALSE(t.is_vacuous(0));
  EXPECT_TRUE(t.is_vacuous(1));
  EXPECT_FALSE(t.is_vacuous(2));
  EXPECT_EQ(t.support(), (std::vector<unsigned>{0, 2}));
  std::vector<unsigned> kept;
  TruthTable r = t.support_reduced(&kept);
  EXPECT_EQ(kept, (std::vector<unsigned>{0, 2}));
  EXPECT_EQ(r.num_vars(), 2u);
  // Reduced function is AND of its two vars: ON-set = {3}.
  EXPECT_EQ(r.on_set(), (std::vector<std::uint32_t>{3}));
}

TEST(TruthTable, SupportReducedOfConstant) {
  TruthTable t = TruthTable::from_function(4, [](std::uint32_t) { return true; });
  TruthTable r = t.support_reduced();
  EXPECT_EQ(r.num_vars(), 0u);
  EXPECT_TRUE(r.is_const_one());
}

TEST(TruthTable, HashDiscriminates) {
  TruthTable a = TruthTable::from_bits("01101001");
  TruthTable b = TruthTable::from_bits("01101000");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), TruthTable::from_bits("01101001").hash());
}

TEST(TruthTable, OnSetSortedAscending) {
  TruthTable t = TruthTable::from_bits("10010110");
  const auto on = t.on_set();
  EXPECT_EQ(on, (std::vector<std::uint32_t>{0, 3, 5, 6}));
}

// --- Differentials: bit-parallel kernels vs the scalar references ----------
//
// truth_table.cpp implements the primitives with delta-swap masks, word
// copies and popcount spans; core/truth_table_ref.hpp retains the per-bit
// loops they replaced. Every kernel is byte-compared (to_bits) against its
// reference over random tables at every arity 1..16.

TruthTable random_table(Rng& rng, unsigned n) {
  TruthTable t(n);
  for (std::uint32_t m = 0; m < t.num_minterms(); m += 64) {
    const std::uint64_t w = rng.next();
    const std::uint32_t span = std::min<std::uint32_t>(64, t.num_minterms() - m);
    for (std::uint32_t b = 0; b < span; ++b) t.set(m + b, (w >> b) & 1u);
  }
  return t;
}

TEST(TruthTableKernels, ComplementMatchesReference) {
  Rng rng(0xC0FFEE01u);
  for (unsigned n = 1; n <= 16; ++n) {
    for (unsigned iter = 0; iter < (n <= 10 ? 16u : 4u); ++iter) {
      const TruthTable f = random_table(rng, n);
      EXPECT_EQ(f.complemented().to_bits(), ref::complemented(f).to_bits());
    }
  }
}

TEST(TruthTableKernels, SwapAdjacentMatchesReference) {
  Rng rng(0xC0FFEE02u);
  for (unsigned n = 2; n <= 16; ++n) {
    for (unsigned iter = 0; iter < (n <= 10 ? 8u : 2u); ++iter) {
      const TruthTable f = random_table(rng, n);
      for (unsigned pos = 0; pos + 1 < n; ++pos) {
        EXPECT_EQ(f.swap_adjacent(pos).to_bits(),
                  ref::swap_adjacent(f, pos).to_bits())
            << "n=" << n << " pos=" << pos;
      }
    }
  }
}

TEST(TruthTableKernels, FlipInputMatchesReference) {
  Rng rng(0xC0FFEE03u);
  for (unsigned n = 1; n <= 16; ++n) {
    for (unsigned iter = 0; iter < (n <= 10 ? 8u : 2u); ++iter) {
      const TruthTable f = random_table(rng, n);
      for (unsigned v = 0; v < n; ++v) {
        EXPECT_EQ(f.flip_input(v).to_bits(), ref::flip_input(f, v).to_bits())
            << "n=" << n << " var=" << v;
        // Flipping twice is the identity.
        EXPECT_EQ(f.flip_input(v).flip_input(v), f);
      }
    }
  }
}

TEST(TruthTableKernels, CofactorMatchesReference) {
  Rng rng(0xC0FFEE04u);
  for (unsigned n = 1; n <= 16; ++n) {
    for (unsigned iter = 0; iter < (n <= 10 ? 8u : 2u); ++iter) {
      const TruthTable f = random_table(rng, n);
      for (unsigned v = 0; v < n; ++v) {
        for (bool value : {false, true}) {
          EXPECT_EQ(f.cofactor(v, value).to_bits(),
                    ref::cofactor(f, v, value).to_bits())
              << "n=" << n << " var=" << v << " value=" << value;
        }
      }
    }
  }
}

TEST(TruthTableKernels, PermutedMatchesReference) {
  Rng rng(0xC0FFEE05u);
  for (unsigned n = 1; n <= 16; ++n) {
    for (unsigned iter = 0; iter < (n <= 10 ? 8u : 2u); ++iter) {
      const TruthTable f = random_table(rng, n);
      const auto p32 = rng.permutation(n);
      const std::vector<unsigned> perm(p32.begin(), p32.end());
      EXPECT_EQ(f.permuted(perm).to_bits(), ref::permuted(f, perm).to_bits())
          << "n=" << n;
    }
  }
}

TEST(TruthTableKernels, IntervalBoundsMatchesReference) {
  Rng rng(0xC0FFEE06u);
  for (unsigned n = 1; n <= 16; ++n) {
    // Random tables (almost never intervals at larger n) ...
    for (unsigned iter = 0; iter < 16; ++iter) {
      const TruthTable f = random_table(rng, n);
      std::uint32_t lo_k = 0, hi_k = 0, lo_r = 0, hi_r = 0;
      const bool k = f.interval_bounds(&lo_k, &hi_k);
      const bool r = ref::interval_bounds(f, &lo_r, &hi_r);
      ASSERT_EQ(k, r) << "n=" << n << " " << f.to_bits();
      if (k) {
        EXPECT_EQ(lo_k, lo_r);
        EXPECT_EQ(hi_k, hi_r);
      }
    }
    // ... and constructed intervals, which must all be accepted exactly.
    for (unsigned iter = 0; iter < 8; ++iter) {
      const std::uint32_t nm = 1u << n;
      std::uint32_t a = static_cast<std::uint32_t>(rng.next() % nm);
      std::uint32_t b = static_cast<std::uint32_t>(rng.next() % nm);
      if (a > b) std::swap(a, b);
      TruthTable f(n);
      for (std::uint32_t m = a; m <= b; ++m) f.set(m, true);
      std::uint32_t lo = 0, hi = 0;
      ASSERT_TRUE(f.interval_bounds(&lo, &hi)) << "n=" << n;
      EXPECT_EQ(lo, a);
      EXPECT_EQ(hi, b);
    }
  }
  // The constant-zero table has no interval.
  std::uint32_t lo = 0, hi = 0;
  EXPECT_FALSE(TruthTable(4).interval_bounds(&lo, &hi));
}

TEST(TruthTableKernels, SupportReducedMatchesReference) {
  Rng rng(0xC0FFEE07u);
  for (unsigned n = 2; n <= 12; ++n) {
    for (unsigned iter = 0; iter < 8; ++iter) {
      // Build a table with planted vacuous variables: a random function of
      // a subset of the inputs.
      const TruthTable g = random_table(rng, n / 2);
      std::vector<unsigned> used;
      while (used.size() < n / 2) {
        const unsigned v = static_cast<unsigned>(rng.next() % n);
        if (std::find(used.begin(), used.end(), v) == used.end()) used.push_back(v);
      }
      std::sort(used.begin(), used.end());
      const TruthTable f = TruthTable::from_function(n, [&](std::uint32_t m) {
        std::uint32_t sub = 0;
        for (unsigned j = 0; j < used.size(); ++j) {
          const std::uint32_t bit = (m >> (n - 1 - used[j])) & 1u;
          sub |= bit << (used.size() - 1 - j);
        }
        return g.get(sub);
      });
      std::vector<unsigned> kept_k, kept_r;
      EXPECT_EQ(f.support_reduced(&kept_k).to_bits(),
                ref::support_reduced(f, &kept_r).to_bits())
          << "n=" << n;
      EXPECT_EQ(kept_k, kept_r);
    }
  }
}

}  // namespace
}  // namespace compsyn
