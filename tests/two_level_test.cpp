#include <gtest/gtest.h>

#include "core/two_level.hpp"
#include "netlist/equivalence.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

TruthTable random_table(Rng& rng, unsigned n) {
  return TruthTable::from_function(n, [&](std::uint32_t) { return rng.flip(); });
}

TEST(Cube, CoversRespectsCareSet) {
  // Over 3 vars: cube x1 ~x3 (care 101, value 100).
  Cube c{0b101, 0b100};
  EXPECT_TRUE(c.covers(0b100));
  EXPECT_TRUE(c.covers(0b110));
  EXPECT_FALSE(c.covers(0b101));
  EXPECT_FALSE(c.covers(0b000));
  EXPECT_EQ(c.literal_count(), 2u);
}

TEST(Primes, KnownExample) {
  // f = ab + ~a c (3 vars a,b,c): primes are ab, ~ac, bc.
  TruthTable f = TruthTable::from_function(3, [](std::uint32_t m) {
    const bool a = m & 4, b = m & 2, c = m & 1;
    return (a && b) || (!a && c);
  });
  const auto primes = prime_implicants(f);
  EXPECT_EQ(primes.size(), 3u);
  for (const Cube& p : primes) {
    // Each prime must be an implicant.
    for (std::uint32_t m = 0; m < 8; ++m) {
      if (p.covers(m)) {
        EXPECT_TRUE(f.get(m)) << m;
      }
    }
  }
}

TEST(Primes, ConstantFunctions) {
  TruthTable one = TruthTable::from_function(2, [](std::uint32_t) { return true; });
  auto p = prime_implicants(one);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].care, 0u);  // the tautology cube
  TruthTable zero(2);
  EXPECT_TRUE(prime_implicants(zero).empty());
}

TEST(Primes, EveryPrimeIsPrime) {
  // Removing any literal from a prime must stop it being an implicant.
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const unsigned n = 3 + trial % 2;
    TruthTable f = random_table(rng, n);
    for (const Cube& p : prime_implicants(f)) {
      for (unsigned v = 0; v < n; ++v) {
        const std::uint32_t bit = 1u << (n - 1 - v);
        if (!(p.care & bit)) continue;
        Cube wider = p;
        wider.care &= ~bit;
        wider.value &= ~bit;
        bool still_implicant = true;
        for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
          if (wider.covers(m) && !f.get(m)) still_implicant = false;
        }
        EXPECT_FALSE(still_implicant)
            << "prime has a removable literal: " << f.to_bits();
      }
    }
  }
}

TEST(Cover, EqualsFunctionOnRandomTables) {
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned n = 2 + trial % 4;
    TruthTable f = random_table(rng, n);
    const auto cover = irredundant_cover(f);
    EXPECT_TRUE(cover_equals(cover, f)) << f.to_bits();
  }
}

TEST(Cover, IsIrredundant) {
  Rng rng(10);
  for (int trial = 0; trial < 100; ++trial) {
    const unsigned n = 3 + trial % 3;
    TruthTable f = random_table(rng, n);
    const auto cover = irredundant_cover(f);
    // Dropping any single cube must break the cover.
    for (std::size_t i = 0; i < cover.size(); ++i) {
      std::vector<Cube> reduced;
      for (std::size_t j = 0; j < cover.size(); ++j) {
        if (j != i) reduced.push_back(cover[j]);
      }
      EXPECT_FALSE(cover_equals(reduced, f))
          << "redundant cube in cover of " << f.to_bits();
    }
  }
}

TEST(Cover, AllCubesArePrimes) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    TruthTable f = random_table(rng, 4);
    const auto primes = prime_implicants(f);
    for (const Cube& c : irredundant_cover(f)) {
      EXPECT_NE(std::find(primes.begin(), primes.end(), c), primes.end());
    }
  }
}

TEST(Cover, IntervalFunctionsHaveCompactCovers) {
  // [3, 12] over 4 vars has the classic 4-cube cover.
  TruthTable f = TruthTable::from_function(
      4, [](std::uint32_t m) { return m >= 3 && m <= 12; });
  const auto cover = irredundant_cover(f);
  EXPECT_TRUE(cover_equals(cover, f));
  EXPECT_LE(cover.size(), 6u);
}

TEST(BuildSop, MatchesFunction) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    const unsigned n = 2 + trial % 4;
    TruthTable f = random_table(rng, n);
    const auto cover = irredundant_cover(f);
    Netlist nl("sop");
    std::vector<NodeId> vars;
    for (unsigned v = 0; v < n; ++v) vars.push_back(nl.add_input());
    NodeId out = build_sop(nl, vars, cover, n);
    nl.mark_output(out);
    for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
      std::vector<std::uint64_t> pi(n);
      for (unsigned v = 0; v < n; ++v) pi[v] = ((m >> (n - 1 - v)) & 1u) ? ~0ull : 0;
      EXPECT_EQ((nl.simulate(pi)[out] & 1ull) != 0, f.get(m))
          << f.to_bits() << " @ " << m;
    }
  }
}

TEST(BuildSop, ConstantsHandled) {
  Netlist nl("k");
  std::vector<NodeId> vars{nl.add_input(), nl.add_input()};
  NodeId zero = build_sop(nl, vars, {}, 2);
  EXPECT_EQ(nl.node(zero).type, GateType::Const0);
  NodeId one = build_sop(nl, vars, {{0, 0}}, 2);
  EXPECT_EQ(nl.node(one).type, GateType::Const1);
}

}  // namespace
}  // namespace compsyn
