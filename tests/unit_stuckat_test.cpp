// Section 3 claims comparison units are fully testable for stuck-at faults
// when their inputs are independently controllable. Verified here by running
// complete ATPG over every fault of every unit, sweeping all bounds.
#include <gtest/gtest.h>

#include <numeric>

#include "atpg/podem.hpp"
#include "core/comparison_unit.hpp"
#include "faults/fault.hpp"

namespace compsyn {
namespace {

ComparisonSpec make_spec(unsigned n, std::uint32_t lower, std::uint32_t upper,
                         bool complemented = false) {
  ComparisonSpec s;
  s.n = n;
  s.perm.resize(n);
  std::iota(s.perm.begin(), s.perm.end(), 0u);
  s.lower = lower;
  s.upper = upper;
  s.complemented = complemented;
  return s;
}

class UnitStuckAt : public ::testing::TestWithParam<unsigned> {};

TEST_P(UnitStuckAt, EveryFaultTestable) {
  const unsigned n = GetParam();
  const std::uint32_t max = (1u << n) - 1;
  AtpgOptions opt;
  opt.backtrack_limit = 0;  // complete search: Untestable would be a proof
  for (std::uint32_t lower = 0; lower <= max; ++lower) {
    for (std::uint32_t upper = lower; upper <= max; ++upper) {
      Netlist unit = build_unit_netlist(make_spec(n, lower, upper));
      for (const StuckFault& f : enumerate_faults(unit, /*collapse=*/true)) {
        const AtpgResult r = run_podem(unit, f, opt);
        ASSERT_EQ(r.status, AtpgStatus::Detected)
            << "n=" << n << " L=" << lower << " U=" << upper << " fault "
            << to_string(unit, f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, UnitStuckAt, ::testing::Values(2u, 3u, 4u, 5u),
                         ::testing::PrintToStringParamName());

TEST(UnitStuckAt, ComplementedUnitsAlsoFullyTestable) {
  for (std::uint32_t lower = 0; lower < 15; ++lower) {
    Netlist unit =
        build_unit_netlist(make_spec(4, lower, std::min(lower + 5, 15u), true));
    for (const StuckFault& f : enumerate_faults(unit, true)) {
      EXPECT_EQ(run_podem(unit, f).status, AtpgStatus::Detected)
          << "L=" << lower << " " << to_string(unit, f);
    }
  }
}

TEST(UnitStuckAt, UnmergedUnitsAlsoFullyTestable) {
  UnitOptions no_merge;
  no_merge.merge_gates = false;
  for (std::uint32_t lower = 1; lower < 14; lower += 3) {
    ComparisonSpec s = make_spec(4, lower, lower + 2);
    Netlist unit = build_unit_netlist(s, no_merge);
    for (const StuckFault& f : enumerate_faults(unit, true)) {
      EXPECT_EQ(run_podem(unit, f).status, AtpgStatus::Detected)
          << "L=" << lower << " " << to_string(unit, f);
    }
  }
}

}  // namespace
}  // namespace compsyn
