#include <gtest/gtest.h>

#include <numeric>

#include "core/unit_testgen.hpp"
#include "delay/robust.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

ComparisonSpec make_spec(unsigned n, std::uint32_t lower, std::uint32_t upper,
                         bool complemented = false) {
  ComparisonSpec s;
  s.n = n;
  s.perm.resize(n);
  std::iota(s.perm.begin(), s.perm.end(), 0u);
  s.lower = lower;
  s.upper = upper;
  s.complemented = complemented;
  return s;
}

// Section 3.3 / Table 1: the L=11, U=12 unit has 7 paths (one from the free
// variable x1, two from each of x2..x4), i.e. 14 path delay faults, and all
// of them are robustly testable.
TEST(UnitTestgen, Table1UnitFullyTestable) {
  const auto spec = make_spec(4, 11, 12);
  UnitTestSet set = generate_unit_tests(spec);
  EXPECT_TRUE(set.complete);
  EXPECT_EQ(set.total_faults, 14u);
  EXPECT_EQ(set.tests.size(), 14u);
  for (const auto& t : set.tests) {
    EXPECT_TRUE(robustly_tests(set.unit, t.path, t.rising, t.v1, t.v2));
  }
}

TEST(UnitTestgen, Table1TestsAreConstructive) {
  const auto spec = make_spec(4, 11, 12);
  UnitTestSet set = generate_unit_tests(spec);
  for (const auto& t : set.tests) {
    EXPECT_TRUE(t.constructive)
        << "the paper's recipe should cover every unit fault";
  }
}

// Table 1 row 1: faults on x1 use x2x3x4 = 011 (the L_F value) held stable.
TEST(UnitTestgen, Table1FreeVariableTestMatchesPaper) {
  const auto spec = make_spec(4, 11, 12);
  UnitTestSet set = generate_unit_tests(spec);
  bool saw_free_var_test = false;
  for (const auto& t : set.tests) {
    if (t.path.nodes.front() != set.unit.inputs()[0]) continue;
    saw_free_var_test = true;
    // Static inputs must keep both blocks at 1 for both vectors: the
    // non-free value must lie in [L_F, U_F] = [3, 4].
    const unsigned v_static1 = (t.v1[1] << 2) | (t.v1[2] << 1) | t.v1[3];
    const unsigned v_static2 = (t.v2[1] << 2) | (t.v2[2] << 1) | t.v2[3];
    EXPECT_EQ(v_static1, v_static2) << "side inputs must be stable";
    EXPECT_GE(v_static1, 3u);
    EXPECT_LE(v_static1, 4u);
    EXPECT_NE(t.v1[0], t.v2[0]);
  }
  EXPECT_TRUE(saw_free_var_test);
}

// The paper's central testability claim (Section 3.3): every comparison unit
// is fully robustly testable for path delay faults. Checked exhaustively for
// every (L, U) pair at each width.
class UnitTestability : public ::testing::TestWithParam<unsigned> {};

TEST_P(UnitTestability, AllUnitsFullyRobustlyTestable) {
  const unsigned n = GetParam();
  const std::uint32_t max = (1u << n) - 1;
  for (std::uint32_t lower = 0; lower <= max; ++lower) {
    for (std::uint32_t upper = lower; upper <= max; ++upper) {
      const auto spec = make_spec(n, lower, upper);
      UnitTestSet set = generate_unit_tests(spec);
      EXPECT_TRUE(set.complete) << "n=" << n << " L=" << lower << " U=" << upper;
      for (const auto& t : set.tests) {
        ASSERT_TRUE(robustly_tests(set.unit, t.path, t.rising, t.v1, t.v2))
            << "n=" << n << " L=" << lower << " U=" << upper;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, UnitTestability, ::testing::Values(1u, 2u, 3u, 4u),
                         ::testing::PrintToStringParamName());

TEST(UnitTestgen, ComplementedUnitsAlsoFullyTestable) {
  for (std::uint32_t lower = 0; lower <= 6; ++lower) {
    const auto spec = make_spec(3, lower, std::min(lower + 2, 7u), true);
    UnitTestSet set = generate_unit_tests(spec);
    EXPECT_TRUE(set.complete) << "L=" << lower;
  }
}

TEST(UnitTestgen, RandomWiderUnitsFullyTestable) {
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    const unsigned n = 5 + trial % 2;
    const std::uint32_t max = (1u << n) - 1;
    std::uint32_t lo = static_cast<std::uint32_t>(rng.below(max + 1));
    std::uint32_t hi = static_cast<std::uint32_t>(rng.below(max + 1));
    if (lo > hi) std::swap(lo, hi);
    const auto spec = make_spec(n, lo, hi);
    UnitTestSet set = generate_unit_tests(spec);
    EXPECT_TRUE(set.complete) << "n=" << n << " L=" << lo << " U=" << hi;
  }
}

TEST(UnitTestgen, TestCountMatchesPathFaultUniverse) {
  const auto spec = make_spec(4, 5, 10);
  UnitTestSet set = generate_unit_tests(spec);
  const auto pc = count_paths(set.unit);
  EXPECT_EQ(set.total_faults, 2 * pc.total);
  EXPECT_EQ(set.tests.size(), set.total_faults);
}

TEST(UnitTestgen, PermutedSpecStillComplete) {
  ComparisonSpec spec;
  spec.n = 4;
  spec.perm = {2, 0, 3, 1};
  spec.lower = 5;
  spec.upper = 11;
  UnitTestSet set = generate_unit_tests(spec);
  EXPECT_TRUE(set.complete);
  for (const auto& t : set.tests) {
    EXPECT_TRUE(robustly_tests(set.unit, t.path, t.rising, t.v1, t.v2));
  }
}

}  // namespace
}  // namespace compsyn
