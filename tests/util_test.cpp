#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace compsyn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInBounds) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, PermutationIsBijection) {
  Rng r(3);
  auto p = r.permutation(50);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("  \t\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Split) {
  auto v = split("a, b ,c", ',');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
  EXPECT_EQ(v[2], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(split("a,,b", ',')[1], "");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("NaNd", "nand"));
  EXPECT_FALSE(iequals("nand", "nor"));
  EXPECT_FALSE(iequals("nand", "nand2"));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(23003369), "23,003,369");
  EXPECT_EQ(with_commas(1234567890123ull), "1,234,567,890,123");
}

TEST(Table, AlignsAndPrints) {
  Table t({"circuit", "gates", "paths"});
  t.row().add("irs1423").add(std::uint64_t{491}).add_commas(42089);
  t.row().add("x").add(std::uint64_t{9}).add_commas(7);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("irs1423"), std::string::npos);
  EXPECT_NE(s.find("42,089"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--k=6", "--seed=42", "--verbose", "circuit.bench"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("k", 0), 6);
  EXPECT_EQ(cli.get_u64("seed", 0), 42u);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_u64("missing", 17), 17u);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "circuit.bench");
}

TEST(Cli, GetDouble) {
  const char* argv[] = {"prog", "--weight-gates=1.5", "--weight-paths=0.25",
                        "--bad=abc"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_double("weight-gates", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(cli.get_double("weight-paths", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.75), 2.75);
  // Non-numeric values fall back to the default rather than throwing.
  EXPECT_DOUBLE_EQ(cli.get_double("bad", 9.0), 9.0);
}

TEST(Cli, WarnsOnUnrecognizedFlags) {
  const char* argv[] = {"prog", "--k=6", "--bogus=1", "--typo"};
  Cli cli(4, const_cast<char**>(argv));
  // Only flags the program actually queried count as recognized.
  EXPECT_EQ(cli.get_int("k", 0), 6);
  EXPECT_FALSE(cli.has("full"));  // querying an absent flag registers it too
  const auto unknown = cli.unrecognized();
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "bogus");
  EXPECT_EQ(unknown[1], "typo");
  std::ostringstream os;
  EXPECT_EQ(cli.warn_unrecognized(os), 2u);
  EXPECT_NE(os.str().find("unrecognized flag --bogus"), std::string::npos);
  EXPECT_NE(os.str().find("unrecognized flag --typo"), std::string::npos);
}

TEST(Cli, NoWarningWhenAllFlagsQueried) {
  const char* argv[] = {"prog", "--k=6"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("k", 0), 6);
  EXPECT_TRUE(cli.unrecognized().empty());
  std::ostringstream os;
  EXPECT_EQ(cli.warn_unrecognized(os), 0u);
  EXPECT_TRUE(os.str().empty());
}

}  // namespace
}  // namespace compsyn
